"""Unit tests for the command-line interface."""

import json

import pytest

from repro.core.cli import main
from repro.obs.schema import validate_jsonl_path


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "ivybridge" in out
    assert "latency_biased" in out
    assert "pdir_fix" in out


def test_table3(capsys):
    assert main(["table3"]) == 0
    out = capsys.readouterr().out
    assert "Table 3" in out


def test_run_single_cell(capsys):
    code = main([
        "run", "--machine", "ivybridge", "--workload", "latency_biased",
        "--method", "precise", "--scale", "0.01", "--repeats", "1",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "ivybridge/latency_biased/precise" in out


def test_run_unavailable_method(capsys):
    code = main([
        "run", "--machine", "magnycours", "--workload", "latency_biased",
        "--method", "lbr", "--scale", "0.01",
    ])
    assert code == 2
    assert "not available" in capsys.readouterr().err


def test_table1_small(capsys):
    assert main(["table1", "--scale", "0.01", "--repeats", "1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "westmere/latency_biased" in out


def test_recommend(capsys):
    code = main([
        "recommend", "--machine", "ivybridge", "--workload",
        "latency_biased", "--scale", "0.01",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "recommended method: lbr" in out
    assert "because:" in out


def test_recommend_no_lbr(capsys):
    code = main([
        "recommend", "--machine", "ivybridge", "--workload",
        "latency_biased", "--scale", "0.01", "--no-lbr",
    ])
    assert code == 0
    assert "pdir_fix" in capsys.readouterr().out


def test_disasm(capsys):
    code = main([
        "disasm", "--workload", "latency_biased", "--function", "main",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "main.odd:" in out
    assert "div" in out


def test_version(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0


def test_run_seed_is_reproducible(capsys):
    cmd = [
        "run", "--machine", "ivybridge", "--workload", "latency_biased",
        "--method", "precise", "--scale", "0.01", "--repeats", "2",
        "--seed", "7",
    ]
    assert main(cmd) == 0
    first = capsys.readouterr().out
    assert main(cmd) == 0
    second = capsys.readouterr().out
    assert first == second


def test_quiet_suppresses_progress_lines(capsys):
    assert main(["table1", "--scale", "0.01", "--repeats", "1", "-q"]) == 0
    captured = capsys.readouterr()
    assert "Table 1" in captured.out       # results still print
    assert "[" not in captured.err          # no per-cell progress


def test_default_emits_progress_lines(capsys):
    assert main(["table1", "--scale", "0.01", "--repeats", "1"]) == 0
    captured = capsys.readouterr()
    assert "/latency_biased/" in captured.err


def test_verbose_prints_span_tree(capsys):
    assert main(["table1", "--scale", "0.01", "--repeats", "1", "-v"]) == 0
    captured = capsys.readouterr()
    assert "span tree" in captured.err
    assert "run_method" in captured.err


def test_trace_writes_schema_valid_jsonl_and_manifest(tmp_path, capsys):
    trace = tmp_path / "run.jsonl"
    assert main(["table1", "--scale", "0.01", "--repeats", "1",
                 "--trace", str(trace)]) == 0
    n_events, errors = validate_jsonl_path(trace)
    assert errors == []
    assert n_events > 10

    events = [json.loads(line) for line in trace.read_text().splitlines()]
    span_names = {e["name"] for e in events if e["type"] == "span"}
    assert {"interpret", "sample", "attribute", "score"} <= span_names
    # Nested: the sample span sits below a run_method span.
    sample = next(e for e in events if e["type"] == "span"
                  and e["name"] == "sample")
    assert sample["depth"] > 0 and "run_method" in sample["path"]
    counters = {e["name"]: e["value"] for e in events
                if e["type"] == "counter"}
    assert counters["samples.collected"] > 0
    assert events[0]["type"] == "run_start"
    assert events[-1]["type"] == "run_end"

    manifest = json.loads((tmp_path / "run.meta.json").read_text())
    assert manifest["config"]["scale"] == 0.01
    assert manifest["config"]["repeats"] == 1
    assert manifest["config"]["seeds"] == [100]
    assert manifest["counters"]["samples.collected"] > 0
    assert manifest["phases"]["cell"]["count"] > 0


def test_table1_jobs_matches_serial(capsys):
    base = ["table1", "--scale", "0.01", "--repeats", "1", "-q"]
    assert main(base) == 0
    serial = capsys.readouterr().out
    assert main(base + ["--jobs", "2"]) == 0
    parallel = capsys.readouterr().out
    assert parallel == serial


def test_cache_flag_populates_store_and_cache_subcommands(tmp_path, capsys):
    store = tmp_path / "cache"
    run = ["table1", "--scale", "0.01", "--repeats", "1", "-q",
           "--cache-dir", str(store)]
    assert main(run) == 0
    cold = capsys.readouterr().out

    assert main(["cache", "stats", "--cache-dir", str(store)]) == 0
    stats_out = capsys.readouterr().out
    assert str(store) in stats_out
    assert "entries:    0" not in stats_out

    # Warm re-run reproduces the table from the cache alone.
    assert main(run + ["--trace", str(tmp_path / "warm.jsonl")]) == 0
    warm = capsys.readouterr().out
    assert warm == cold
    manifest = json.loads((tmp_path / "warm.meta.json").read_text())
    assert manifest["counters"]["cache.hits"] > 0
    assert "harness.cells_evaluated" not in manifest["counters"]

    assert main(["cache", "clear", "--cache-dir", str(store)]) == 0
    assert "removed" in capsys.readouterr().out
    assert main(["cache", "stats", "--cache-dir", str(store)]) == 0
    assert "entries:    0" in capsys.readouterr().out


def test_trace_on_single_run_cell(tmp_path, capsys):
    trace = tmp_path / "cell.jsonl"
    assert main([
        "run", "--machine", "ivybridge", "--workload", "latency_biased",
        "--method", "lbr", "--scale", "0.01", "--repeats", "1",
        "--trace", str(trace),
    ]) == 0
    events = [json.loads(line) for line in trace.read_text().splitlines()]
    counters = {e["name"]: e["value"] for e in events
                if e["type"] == "counter"}
    assert counters.get("lbr.records", 0) > 0
