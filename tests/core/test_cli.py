"""Unit tests for the command-line interface."""

import pytest

from repro.core.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "ivybridge" in out
    assert "latency_biased" in out
    assert "pdir_fix" in out


def test_table3(capsys):
    assert main(["table3"]) == 0
    out = capsys.readouterr().out
    assert "Table 3" in out


def test_run_single_cell(capsys):
    code = main([
        "run", "--machine", "ivybridge", "--workload", "latency_biased",
        "--method", "precise", "--scale", "0.01", "--repeats", "1",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "ivybridge/latency_biased/precise" in out


def test_run_unavailable_method(capsys):
    code = main([
        "run", "--machine", "magnycours", "--workload", "latency_biased",
        "--method", "lbr", "--scale", "0.01",
    ])
    assert code == 2
    assert "not available" in capsys.readouterr().err


def test_table1_small(capsys):
    assert main(["table1", "--scale", "0.01", "--repeats", "1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "westmere/latency_biased" in out


def test_recommend(capsys):
    code = main([
        "recommend", "--machine", "ivybridge", "--workload",
        "latency_biased", "--scale", "0.01",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "recommended method: lbr" in out
    assert "because:" in out


def test_recommend_no_lbr(capsys):
    code = main([
        "recommend", "--machine", "ivybridge", "--workload",
        "latency_biased", "--scale", "0.01", "--no-lbr",
    ])
    assert code == 0
    assert "pdir_fix" in capsys.readouterr().out


def test_disasm(capsys):
    code = main([
        "disasm", "--workload", "latency_biased", "--function", "main",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "main.odd:" in out
    assert "div" in out


def test_version(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
