"""Unit tests for the command-line interface."""

import json

import pytest

from repro.core.cli import main
from repro.obs.schema import validate_jsonl_path


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "ivybridge" in out
    assert "latency_biased" in out
    assert "pdir_fix" in out


def test_table3(capsys):
    assert main(["table3"]) == 0
    out = capsys.readouterr().out
    assert "Table 3" in out


def test_run_single_cell(capsys):
    code = main([
        "run", "--machine", "ivybridge", "--workload", "latency_biased",
        "--method", "precise", "--scale", "0.01", "--repeats", "1",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "ivybridge/latency_biased/precise" in out


def test_run_unavailable_method(capsys):
    code = main([
        "run", "--machine", "magnycours", "--workload", "latency_biased",
        "--method", "lbr", "--scale", "0.01",
    ])
    assert code == 2
    assert "not available" in capsys.readouterr().err


def test_run_json_emits_canonical_result_document(capsys):
    import json

    code = main([
        "run", "--machine", "ivybridge", "--workload", "latency_biased",
        "--method", "precise", "--scale", "0.01", "--repeats", "1", "--json",
    ])
    assert code == 0
    out = capsys.readouterr().out
    document = json.loads(out)
    assert document["schema_version"] == 1
    assert document["request"]["machine"] == "ivybridge"
    assert document["stats"]["repeats"] == 1
    # Canonical bytes: compact separators, single trailing newline.
    assert out.endswith("\n") and not out.endswith("\n\n")


def test_run_rejects_unknown_machine(capsys):
    code = main([
        "run", "--machine", "z80", "--workload", "latency_biased",
        "--method", "precise", "--scale", "0.01",
    ])
    assert code == 2
    assert "error:" in capsys.readouterr().err


def test_table1_small(capsys):
    assert main(["table1", "--scale", "0.01", "--repeats", "1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "westmere/latency_biased" in out


def test_recommend(capsys):
    code = main([
        "recommend", "--machine", "ivybridge", "--workload",
        "latency_biased", "--scale", "0.01",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "recommended method: lbr" in out
    assert "because:" in out


def test_recommend_no_lbr(capsys):
    code = main([
        "recommend", "--machine", "ivybridge", "--workload",
        "latency_biased", "--scale", "0.01", "--no-lbr",
    ])
    assert code == 0
    assert "pdir_fix" in capsys.readouterr().out


def test_disasm(capsys):
    code = main([
        "disasm", "--workload", "latency_biased", "--function", "main",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "main.odd:" in out
    assert "div" in out


def test_version(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0


def test_run_seed_is_reproducible(capsys):
    cmd = [
        "run", "--machine", "ivybridge", "--workload", "latency_biased",
        "--method", "precise", "--scale", "0.01", "--repeats", "2",
        "--seed", "7",
    ]
    assert main(cmd) == 0
    first = capsys.readouterr().out
    assert main(cmd) == 0
    second = capsys.readouterr().out
    assert first == second


def test_quiet_suppresses_progress_lines(capsys):
    assert main(["table1", "--scale", "0.01", "--repeats", "1", "-q"]) == 0
    captured = capsys.readouterr()
    assert "Table 1" in captured.out       # results still print
    assert "[" not in captured.err          # no per-cell progress


def test_default_emits_progress_lines(capsys):
    assert main(["table1", "--scale", "0.01", "--repeats", "1"]) == 0
    captured = capsys.readouterr()
    assert "/latency_biased/" in captured.err


def test_verbose_prints_span_tree(capsys):
    assert main(["table1", "--scale", "0.01", "--repeats", "1", "-v"]) == 0
    captured = capsys.readouterr()
    assert "span tree" in captured.err
    assert "run_method" in captured.err


def test_trace_writes_schema_valid_jsonl_and_manifest(tmp_path, capsys):
    trace = tmp_path / "run.jsonl"
    assert main(["table1", "--scale", "0.01", "--repeats", "1",
                 "--trace", str(trace)]) == 0
    n_events, errors = validate_jsonl_path(trace)
    assert errors == []
    assert n_events > 10

    events = [json.loads(line) for line in trace.read_text().splitlines()]
    span_names = {e["name"] for e in events if e["type"] == "span"}
    assert {"interpret", "sample", "attribute", "score"} <= span_names
    # Nested: the sample span sits below a run_method span.
    sample = next(e for e in events if e["type"] == "span"
                  and e["name"] == "sample")
    assert sample["depth"] > 0 and "run_method" in sample["path"]
    counters = {e["name"]: e["value"] for e in events
                if e["type"] == "counter"}
    assert counters["samples.collected"] > 0
    assert events[0]["type"] == "run_start"
    assert events[-1]["type"] == "run_end"

    manifest = json.loads((tmp_path / "run.meta.json").read_text())
    assert manifest["config"]["scale"] == 0.01
    assert manifest["config"]["repeats"] == 1
    assert manifest["config"]["seeds"] == [100]
    assert manifest["counters"]["samples.collected"] > 0
    assert manifest["phases"]["cell"]["count"] > 0


def test_table1_jobs_matches_serial(capsys):
    base = ["table1", "--scale", "0.01", "--repeats", "1", "-q"]
    assert main(base) == 0
    serial = capsys.readouterr().out
    assert main(base + ["--jobs", "2"]) == 0
    parallel = capsys.readouterr().out
    assert parallel == serial


def test_cache_flag_populates_store_and_cache_subcommands(tmp_path, capsys):
    store = tmp_path / "cache"
    run = ["table1", "--scale", "0.01", "--repeats", "1", "-q",
           "--cache-dir", str(store)]
    assert main(run) == 0
    cold = capsys.readouterr().out

    assert main(["cache", "stats", "--cache-dir", str(store)]) == 0
    stats_out = capsys.readouterr().out
    assert str(store) in stats_out
    assert "entries:    0" not in stats_out

    # Warm re-run reproduces the table from the cache alone.
    assert main(run + ["--trace", str(tmp_path / "warm.jsonl")]) == 0
    warm = capsys.readouterr().out
    assert warm == cold
    manifest = json.loads((tmp_path / "warm.meta.json").read_text())
    assert manifest["counters"]["cache.hits"] > 0
    assert "harness.cells_evaluated" not in manifest["counters"]

    assert main(["cache", "clear", "--cache-dir", str(store)]) == 0
    assert "removed" in capsys.readouterr().out
    assert main(["cache", "stats", "--cache-dir", str(store)]) == 0
    assert "entries:    0" in capsys.readouterr().out


def test_cache_stats_json(tmp_path, capsys):
    store = tmp_path / "cache"
    assert main(["table1", "--scale", "0.01", "--repeats", "1", "-q",
                 "--cache-dir", str(store)]) == 0
    capsys.readouterr()
    assert main(["cache", "stats", "--json", "--cache-dir", str(store)]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["root"] == str(store)
    assert stats["entries"] > 0
    assert stats["total_bytes"] > 0
    assert set(stats["by_kind"]) >= {"stats"}
    assert sum(stats["by_kind"].values()) == stats["entries"]
    # Versioned document with a per-tier breakdown (additive fields).
    assert stats["schema_version"] == 1
    assert [tier["tier"] for tier in stats["tiers"]] == ["disk"]
    assert stats["tiers"][0]["bytes"] >= 0


def test_cache_budget_flags_are_invisible_to_results(tmp_path, capsys):
    """--cache-max-bytes small enough to evict continuously still renders
    the same table, and `cache trim` enforces a budget offline."""
    base = ["table1", "--scale", "0.01", "--repeats", "1", "-q"]
    assert main(base) == 0
    reference = capsys.readouterr().out

    store = tmp_path / "budgeted"
    assert main(base + ["--cache-dir", str(store),
                        "--cache-max-bytes", "512",
                        "--cache-hot-entries", "2"]) == 0
    assert capsys.readouterr().out == reference

    # Offline trim: tighten the budget further and evict.
    assert main(["cache", "stats", "--json", "--cache-dir", str(store)]) == 0
    before = json.loads(capsys.readouterr().out)
    assert main(["cache", "trim", "--cache-dir", str(store),
                 "--max-bytes", "1"]) == 0
    assert "evicted" in capsys.readouterr().out
    assert main(["cache", "stats", "--json", "--cache-dir", str(store)]) == 0
    after = json.loads(capsys.readouterr().out)
    assert after["entries"] < before["entries"]


def test_cache_max_bytes_accepts_size_suffixes():
    from repro.core.cli import _parse_size

    assert _parse_size("4096") == 4096
    assert _parse_size("64k") == 64 * 1024
    assert _parse_size("16M") == 16 * 1024 ** 2
    assert _parse_size("1g") == 1024 ** 3
    import argparse

    import pytest

    with pytest.raises(argparse.ArgumentTypeError):
        _parse_size("huge")
    with pytest.raises(argparse.ArgumentTypeError):
        _parse_size("-4")


def test_trim_without_budget_is_a_usage_error(tmp_path):
    assert main(["cache", "trim", "--cache-dir", str(tmp_path)]) == 2


def _write_sweep_spec(tmp_path):
    from repro.sweep import CampaignSpec

    spec = CampaignSpec(
        name="cli-sweep", workloads=("latency_biased",),
        methods=("classic", "precise"), machines=("ivybridge",),
        periods=(100, 200), seed_counts=(1,), scale=0.01,
    )
    return spec, spec.save(tmp_path / "spec.json")


def test_sweep_run_status_report_cycle(tmp_path, capsys):
    spec, spec_path = _write_sweep_spec(tmp_path)
    out_dir = tmp_path / "camp"

    assert main(["sweep", "run", str(spec_path), "--out", str(out_dir),
                 "-q"]) == 0
    run_out = capsys.readouterr().out
    assert "cli-sweep" in run_out and "4 cells" in run_out
    assert (out_dir / "report.md").exists()

    assert main(["sweep", "status", str(out_dir), "--json", "-q"]) == 0
    status = json.loads(capsys.readouterr().out)
    assert status["complete"] is True
    assert status["cells_done"] == status["cells_total"] == spec.num_points
    assert status["spec_digest"] == spec.digest()

    before = (out_dir / "report.md").read_bytes()
    (out_dir / "report.md").unlink()
    assert main(["sweep", "report", str(out_dir), "-q"]) == 0
    assert str(out_dir / "report.md") in capsys.readouterr().out
    assert (out_dir / "report.md").read_bytes() == before


def test_sweep_run_workers_flag_drives_the_coordinator(tmp_path, capsys,
                                                       monkeypatch):
    import repro.sweep

    _, spec_path = _write_sweep_spec(tmp_path)
    seen = {}

    def fake_distributed(spec, journal_path, workers, *, fleet=None,
                         resume=False, on_point=None):
        seen["workers"] = list(workers)
        seen["fleet"] = fleet
        result = repro.sweep.run_campaign(spec, journal_path, resume=resume,
                                          on_point=on_point)
        return result, repro.sweep.FleetReport(
            workers=[repro.sweep.WorkerState(url=url, index=index)
                     for index, url in enumerate(workers)])

    monkeypatch.setattr(repro.sweep, "run_campaign_distributed",
                        fake_distributed)
    assert main(["sweep", "run", str(spec_path),
                 "--out", str(tmp_path / "camp"),
                 "--workers", "http://a:1,http://b:2", "--workers",
                 "http://c:3", "--cell-deadline", "45", "--max-attempts",
                 "3", "--max-inflight", "4", "-q"]) == 0
    assert "4 cells" in capsys.readouterr().out
    assert seen["workers"] == ["http://a:1", "http://b:2", "http://c:3"]
    assert seen["fleet"].cell_deadline_s == 45.0
    assert seen["fleet"].max_attempts == 3
    assert seen["fleet"].max_inflight == 4
    manifest = json.loads(
        (tmp_path / "camp" / "campaign.meta.json").read_text())
    assert manifest["config"]["workers"] == seen["workers"]
    assert len(manifest["fleet"]["workers"]) == 3


def test_sweep_run_emits_progress_lines(tmp_path, capsys):
    _, spec_path = _write_sweep_spec(tmp_path)
    assert main(["sweep", "run", str(spec_path),
                 "--out", str(tmp_path / "camp")]) == 0
    captured = capsys.readouterr()
    assert "[  1/4]" in captured.err
    assert "ivybridge/latency_biased/classic@100x1" in captured.err


def test_sweep_resume_cli_reevaluates_nothing(tmp_path, capsys):
    spec, spec_path = _write_sweep_spec(tmp_path)
    out_dir = tmp_path / "camp"
    base = ["sweep", "run", str(spec_path), "--out", str(out_dir), "-q"]
    assert main(base) == 0
    capsys.readouterr()

    # Re-running without --resume is refused, exit code 2.
    assert main(base) == 2
    assert "--resume" in capsys.readouterr().err

    # Interrupt: drop the last journaled cell, then resume.
    journal = out_dir / "journal.jsonl"
    lines = journal.read_text().splitlines(keepends=True)
    journal.write_text("".join(lines[:-1]))
    baseline_report = (out_dir / "report.md").read_bytes()

    trace = tmp_path / "resume.jsonl"
    assert main(base + ["--resume", "--trace", str(trace)]) == 0
    capsys.readouterr()
    manifest = json.loads((tmp_path / "resume.meta.json").read_text())
    assert manifest["counters"]["sweep.cells_resumed"] == spec.num_points - 1
    assert manifest["counters"]["sweep.cells_done"] == 1
    assert (out_dir / "report.md").read_bytes() == baseline_report


def test_sweep_status_of_missing_campaign_fails_cleanly(tmp_path, capsys):
    assert main(["sweep", "status", str(tmp_path / "nope"), "-q"]) == 2
    assert "No such file" in capsys.readouterr().err


def test_trace_on_single_run_cell(tmp_path, capsys):
    trace = tmp_path / "cell.jsonl"
    assert main([
        "run", "--machine", "ivybridge", "--workload", "latency_biased",
        "--method", "lbr", "--scale", "0.01", "--repeats", "1",
        "--trace", str(trace),
    ]) == 0
    events = [json.loads(line) for line in trace.read_text().splitlines()]
    counters = {e["name"]: e["value"] for e in events
                if e["type"] == "counter"}
    assert counters.get("lbr.records", 0) > 0


def test_workloads_lists_every_registered_workload(capsys):
    from repro.workloads.registry import list_workloads

    assert main(["workloads"]) == 0
    out = capsys.readouterr().out
    for workload in list_workloads():
        assert workload.name in out
        assert workload.category in out


def test_workloads_category_filter_and_json(capsys):
    assert main(["workloads", "--category", "phase", "--json"]) == 0
    rows = json.loads(capsys.readouterr().out)
    assert [r["name"] for r in rows] == ["phased"]
    row = rows[0]
    assert row["category"] == "phase"
    assert row["default_period"] == 2000
    assert row["description"]


def test_fidelity_scores_multiple_methods(capsys):
    code = main([
        "fidelity", "--machine", "westmere", "--workload", "memaccess",
        "--method", "classic,lbr", "--scale", "0.03", "--repeats", "2",
    ])
    assert code == 0
    out = capsys.readouterr().out
    for method in ("classic", "lbr"):
        assert method in out
    for label in ("jaccard", "rank", "inline", "layout"):
        assert label in out


def test_fidelity_json_matches_api_bytes(capsys):
    from repro import api

    code = main([
        "fidelity", "--machine", "westmere", "--workload", "phased",
        "--method", "classic", "--scale", "0.03", "--repeats", "2", "--json",
    ])
    assert code == 0
    out = capsys.readouterr().out
    expected = api.evaluate_request(api.EvaluateRequest(
        machine="westmere", workload="phased", method="classic",
        scale=0.03, repeats=2, fidelity=True,
    )).to_json()
    assert out == expected


def test_fidelity_all_blank_exits_2(capsys):
    code = main([
        "fidelity", "--machine", "magnycours", "--workload", "phased",
        "--method", "lbr", "--scale", "0.03", "--repeats", "1",
    ])
    assert code == 2


def test_sweep_status_reports_per_axis_progress(tmp_path, capsys):
    spec, spec_path = _write_sweep_spec(tmp_path)
    out_dir = tmp_path / "camp"
    assert main(["sweep", "run", str(spec_path), "--out", str(out_dir),
                 "-q"]) == 0
    capsys.readouterr()

    assert main(["sweep", "status", str(out_dir), "--json", "-q"]) == 0
    status = json.loads(capsys.readouterr().out)
    axes = status["axes"]
    assert axes["workloads"]["latency_biased"] == {"done": 4, "total": 4}
    # latency_biased is a kernel workload: category counts aggregate it.
    category = next(iter(axes["categories"].values()))
    assert category == {"done": 4, "total": 4}
    assert set(axes["methods"]) == {"classic", "precise"}
    assert set(axes["periods"]) == {"100", "200"}

    assert main(["sweep", "status", str(out_dir), "-q"]) == 0
    text = capsys.readouterr().out
    for axis_name in ("workloads", "categories", "methods", "machines",
                      "periods"):
        assert axis_name in text
