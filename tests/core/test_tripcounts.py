"""Unit tests for LBR-based loop trip-count estimation."""

import numpy as np
import pytest

from repro import IVY_BRIDGE, Machine, ProgramBuilder
from repro.errors import AnalysisError
from repro.cpu.interpreter import run_program
from repro.cpu.trace import Trace
from repro.core.tripcounts import (
    estimate_tripcounts,
    find_loop_backedges,
    true_mean_trips,
)
from repro.pmu.events import taken_branches_event
from repro.pmu.periods import PeriodPolicy
from repro.pmu.sampler import Sampler, SamplingConfig


def build_nested_loops(outer: int = 400, inner: int = 7):
    """Outer loop of ``outer`` iterations, inner loop of ``inner`` trips."""
    b = ProgramBuilder("nested")
    f = b.function("main")
    f.block("entry")
    f.li(0, outer)
    f.block("outer_head")
    f.alu_burst(3)
    f.li(1, inner)
    f.jmp("inner_loop")
    f.block("inner_loop")
    f.alu_burst(4)
    f.subi(1, 1, 1)
    f.bnei(1, 0, "inner_loop")
    f.block("outer_latch")
    f.subi(0, 0, 1)
    f.bnei(0, 0, "outer_head")
    f.block("exit")
    f.halt()
    return b.build()


@pytest.fixture(scope="module")
def nested_execution():
    program = build_nested_loops()
    return Machine(IVY_BRIDGE).execute(program)


def test_find_backedges(nested_execution):
    program = nested_execution.program
    backedges = find_loop_backedges(program)
    labels = {program.blocks[b].label for b in backedges}
    assert labels == {"main.inner_loop", "main.outer_latch"}


def test_true_mean_trips(nested_execution):
    program = nested_execution.program
    trace = nested_execution.trace
    inner = program.block("main.inner_loop").index
    assert true_mean_trips(trace, inner) == pytest.approx(7.0)
    outer = program.block("main.outer_latch").index
    assert true_mean_trips(trace, outer) == pytest.approx(400.0)


def test_requires_lbr(nested_execution):
    config = SamplingConfig(
        event=taken_branches_event(IVY_BRIDGE),
        period=PeriodPolicy(base=11),
    )
    batch = Sampler(nested_execution).collect(config,
                                              np.random.default_rng(0))
    with pytest.raises(AnalysisError, match="requires LBR"):
        estimate_tripcounts(batch)


def test_estimates_recover_inner_trip_count(nested_execution):
    config = SamplingConfig(
        event=taken_branches_event(IVY_BRIDGE),
        period=PeriodPolicy(base=13),
        collect_lbr=True,
    )
    batch = Sampler(nested_execution).collect(config,
                                              np.random.default_rng(1))
    estimates = {e.label: e for e in estimate_tripcounts(batch)}
    inner = estimates["main.inner_loop"]
    assert inner.true_mean_trips == pytest.approx(7.0)
    # Dense LBR coverage: within 30% of the truth.
    assert inner.relative_error < 0.3


def test_unexecuted_loop_reports_zero():
    b = ProgramBuilder("dead_loop")
    f = b.function("main")
    f.block("entry")
    f.li(0, 0)
    f.beqi(0, 0, "exit")
    f.block("loop")
    f.alu_burst(2)
    f.subi(0, 0, 1)
    f.bnei(0, 0, "loop")
    f.block("fall")
    f.nop()
    f.block("exit")
    f.halt()
    program = b.build()
    execution = Machine(IVY_BRIDGE).execute(program)
    config = SamplingConfig(
        event=taken_branches_event(IVY_BRIDGE),
        period=PeriodPolicy(base=2),
        collect_lbr=True,
    )
    batch = Sampler(execution).collect(config, np.random.default_rng(0))
    estimates = {e.label: e for e in estimate_tripcounts(batch)}
    dead = estimates["main.loop"]
    assert dead.true_mean_trips == 0.0
    assert dead.estimated_mean_trips == 0.0
    assert dead.relative_error == 0.0
