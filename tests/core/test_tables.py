"""Unit tests for table assembly and rendering."""

import pytest

from repro.core.experiment import ExperimentConfig, Harness
from repro.core.tables import (
    TABLE_METHOD_KEYS,
    build_table1,
    build_table2,
    render_table3,
)


@pytest.fixture(scope="module")
def harness():
    return Harness(ExperimentConfig(scale=0.01, repeats=1))


@pytest.fixture(scope="module")
def small_table1(harness):
    return build_table1(
        harness,
        methods=("classic", "precise", "lbr"),
        workloads=("latency_biased",),
    )


def test_table1_structure(small_table1):
    assert small_table1.column_labels == ["classic", "precise", "lbr"]
    machines = {m for m, _ in small_table1.row_labels}
    assert machines == {"magnycours", "westmere", "ivybridge"}


def test_blank_cells_for_unavailable_methods(small_table1):
    assert small_table1.get("magnycours", "latency_biased", "lbr") is None
    assert small_table1.get("westmere", "latency_biased", "lbr") is not None


def test_render_contains_all_rows(small_table1):
    text = small_table1.render()
    for machine, workload in small_table1.row_labels:
        assert f"{machine}/{workload}" in text
    assert "--" in text  # the AMD LBR blank


def test_markdown_render(small_table1):
    md = small_table1.to_markdown()
    assert md.count("|---") == len(small_table1.column_labels) + 1
    assert "magnycours/latency_biased" in md


def test_to_rows_flat_export(small_table1):
    rows = small_table1.to_rows()
    assert len(rows) == 3 * 3  # machines x methods for one workload
    blank = [r for r in rows
             if r["machine"] == "magnycours" and r["method"] == "lbr"]
    assert blank[0]["mean_error"] is None


def test_table2_uses_app_workloads(harness):
    table = build_table2(
        harness, methods=("classic",), workloads=("mcf",)
    )
    assert all(w == "mcf" for _, w in table.row_labels)
    assert table.get("ivybridge", "mcf", "classic") is not None


def test_get_ignores_period_and_engine():
    from repro.core.experiment import CellSpec
    from repro.core.stats import AccuracyStats
    from repro.core.tables import TableResult

    table = TableResult(title="clean", row_labels=[("ivybridge", "mcf")],
                        column_labels=["classic", "precise"])
    by_ref = AccuracyStats(method="classic", errors=(0.3,))
    by_fast = AccuracyStats(method="precise", errors=(0.4,))
    table.cells[CellSpec("ivybridge", "mcf", "classic", 500)] = by_ref
    table.cells[
        CellSpec("ivybridge", "mcf", "precise", 500, engine="fast")
    ] = by_fast
    assert table.get("ivybridge", "mcf", "classic") is by_ref
    assert table.get("ivybridge", "mcf", "precise") is by_fast
    assert table.get("westmere", "mcf", "classic") is None


def test_table3_render_mentions_paper_values():
    text = render_table3()
    assert "2,000,003" in text
    assert "2,000,000" in text
    # All seven Table 3 rows.
    for key in TABLE_METHOD_KEYS:
        assert key in text
    # The supplemental method is not a Table 3 row.
    assert "precise_fix" not in text
