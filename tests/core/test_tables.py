"""Unit tests for table assembly and rendering."""

import pytest

from repro.core.experiment import ExperimentConfig, Harness
from repro.core.tables import (
    TABLE_METHOD_KEYS,
    build_table1,
    build_table2,
    render_table3,
)


@pytest.fixture(scope="module")
def harness():
    return Harness(ExperimentConfig(scale=0.01, repeats=1))


@pytest.fixture(scope="module")
def small_table1(harness):
    return build_table1(
        harness,
        methods=("classic", "precise", "lbr"),
        workloads=("latency_biased",),
    )


def test_table1_structure(small_table1):
    assert small_table1.column_labels == ["classic", "precise", "lbr"]
    machines = {m for m, _ in small_table1.row_labels}
    assert machines == {"magnycours", "westmere", "ivybridge"}


def test_blank_cells_for_unavailable_methods(small_table1):
    assert small_table1.get("magnycours", "latency_biased", "lbr") is None
    assert small_table1.get("westmere", "latency_biased", "lbr") is not None


def test_render_contains_all_rows(small_table1):
    text = small_table1.render()
    for machine, workload in small_table1.row_labels:
        assert f"{machine}/{workload}" in text
    assert "--" in text  # the AMD LBR blank


def test_markdown_render(small_table1):
    md = small_table1.to_markdown()
    assert md.count("|---") == len(small_table1.column_labels) + 1
    assert "magnycours/latency_biased" in md


def test_to_rows_flat_export(small_table1):
    rows = small_table1.to_rows()
    assert len(rows) == 3 * 3  # machines x methods for one workload
    blank = [r for r in rows
             if r["machine"] == "magnycours" and r["method"] == "lbr"]
    assert blank[0]["mean_error"] is None


def test_table2_uses_app_workloads(harness):
    table = build_table2(
        harness, methods=("classic",), workloads=("mcf",)
    )
    assert all(w == "mcf" for _, w in table.row_labels)
    assert table.get("ivybridge", "mcf", "classic") is not None


def test_get_accepts_legacy_tuple_keys_with_deprecation():
    import pytest

    from repro.core.stats import AccuracyStats
    from repro.core.tables import TableResult

    table = TableResult(title="legacy", row_labels=[("ivybridge", "mcf")],
                        column_labels=["classic", "lbr"])
    stats = AccuracyStats(method="classic", errors=(0.1, 0.2))
    table.cells[("ivybridge", "mcf", "classic")] = stats          # 3-tuple
    table.cells[("ivybridge", "mcf", "lbr", 2000)] = None         # 4-tuple
    with pytest.warns(DeprecationWarning, match="CellSpec"):
        assert table.get("ivybridge", "mcf", "classic") is stats
    with pytest.warns(DeprecationWarning):
        assert table.get("ivybridge", "mcf", "lbr") is None
    with pytest.warns(DeprecationWarning):
        assert table.get("westmere", "mcf", "classic") is None
    with pytest.warns(DeprecationWarning):
        assert "0.150" in table.render()     # mean of (0.1, 0.2)


def test_get_mixes_cellspec_and_tuple_keys():
    import pytest

    from repro.core.experiment import CellSpec
    from repro.core.stats import AccuracyStats
    from repro.core.tables import TableResult

    table = TableResult(title="mixed", row_labels=[("ivybridge", "mcf")],
                        column_labels=["classic", "precise"])
    by_spec = AccuracyStats(method="classic", errors=(0.3,))
    by_tuple = AccuracyStats(method="precise", errors=(0.4,))
    table.cells[CellSpec("ivybridge", "mcf", "classic", 500)] = by_spec
    table.cells[("ivybridge", "mcf", "precise")] = by_tuple
    assert table.get("ivybridge", "mcf", "classic") is by_spec
    with pytest.warns(DeprecationWarning):
        assert table.get("ivybridge", "mcf", "precise") is by_tuple


def test_get_with_cellspec_keys_only_does_not_warn():
    import warnings

    from repro.core.experiment import CellSpec
    from repro.core.stats import AccuracyStats
    from repro.core.tables import TableResult

    table = TableResult(title="clean", row_labels=[("ivybridge", "mcf")],
                        column_labels=["classic"])
    stats = AccuracyStats(method="classic", errors=(0.3,))
    table.cells[CellSpec("ivybridge", "mcf", "classic", 500)] = stats
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        assert table.get("ivybridge", "mcf", "classic") is stats
        assert table.get("ivybridge", "mcf", "lbr") is None


def test_table3_render_mentions_paper_values():
    text = render_table3()
    assert "2,000,003" in text
    assert "2,000,000" in text
    # All seven Table 3 rows.
    for key in TABLE_METHOD_KEYS:
        assert key in text
    # The supplemental method is not a Table 3 row.
    assert "precise_fix" not in text
