"""Unit tests for the persistent artifact cache."""

import numpy as np
import pytest

from repro.obs import collecting
from repro.core.cache import (
    CACHE_FORMAT_VERSION,
    ArtifactCache,
    cache_digest,
    default_cache_root,
    resolve_cache,
)
from repro.core.experiment import CellSpec, ExperimentConfig, Harness
from repro.core.stats import summarize_errors


@pytest.fixture()
def cache(tmp_path):
    return ArtifactCache(tmp_path / "store")


def test_digest_is_stable_and_sensitive():
    base = cache_digest(kind="stats", workload="mcf", period=500)
    assert base == cache_digest(kind="stats", workload="mcf", period=500)
    assert base != cache_digest(kind="stats", workload="mcf", period=501)
    assert base != cache_digest(kind="stats", workload="povray", period=500)
    assert len(base) == 64


def test_stats_round_trip(cache):
    stats = summarize_errors("lbr", [0.125, 0.25])
    digest = cache_digest(kind="stats", x=1)
    assert cache.get_stats(digest) is None           # cold miss
    cache.put_stats(digest, stats)
    loaded = cache.get_stats(digest)
    assert loaded == stats
    assert loaded.errors == (0.125, 0.25)


def test_arrays_round_trip(cache):
    digest = cache_digest(kind="trace", x=2)
    seq = np.arange(100, dtype=np.int32)
    cache.put_arrays("trace", digest, block_seq=seq)
    loaded = cache.get_arrays("trace", digest, ("block_seq",))
    np.testing.assert_array_equal(loaded["block_seq"], seq)


def test_missing_array_member_is_a_miss(cache):
    digest = cache_digest(kind="reference", x=3)
    cache.put_arrays("reference", digest, only_one=np.zeros(4))
    assert cache.get_arrays("reference", digest,
                            ("only_one", "missing")) is None


def test_corrupt_entries_load_as_misses(cache):
    stats = summarize_errors("classic", [0.5])
    digest = cache_digest(kind="stats", x=4)
    cache.put_stats(digest, stats)
    path = cache._path("stats", digest, ".json")
    path.write_text("{ not json", encoding="utf-8")
    with collecting() as col:
        assert cache.get_stats(digest) is None
    assert col.metrics.counter("cache.corrupt") == 1
    assert col.metrics.counter("cache.misses") == 1

    adigest = cache_digest(kind="trace", x=5)
    cache.put_arrays("trace", adigest, block_seq=np.arange(4))
    cache._path("trace", adigest, ".npz").write_bytes(b"garbage")
    assert cache.get_arrays("trace", adigest, ("block_seq",)) is None


def test_hit_miss_counters_flow_to_obs(cache):
    digest = cache_digest(kind="stats", x=6)
    with collecting() as col:
        assert cache.get_stats(digest) is None
        cache.put_stats(digest, summarize_errors("classic", [0.1]))
        assert cache.get_stats(digest) is not None
    counters = col.metrics.counters()
    assert counters["cache.misses"] == 1
    assert counters["cache.hits"] == 1
    assert counters["cache.writes"] == 1


def test_stats_and_clear(cache):
    assert cache.stats().entries == 0
    cache.put_stats(cache_digest(x=7), summarize_errors("classic", [0.1]))
    cache.put_arrays("trace", cache_digest(x=8), block_seq=np.arange(3))
    snapshot = cache.stats()
    assert snapshot.entries == 2
    assert snapshot.by_kind == {"stats": 1, "trace": 1}
    assert snapshot.total_bytes > 0
    assert "entries:    2" in snapshot.render()
    assert cache.clear() == 2
    assert cache.stats().entries == 0


def test_versioned_layout(cache):
    cache.put_stats(cache_digest(x=9), summarize_errors("classic", [0.1]))
    assert (cache.root / f"v{CACHE_FORMAT_VERSION}" / "stats").is_dir()


def test_resolve_cache(tmp_path):
    assert resolve_cache(None) is None
    assert resolve_cache(False) is None
    assert resolve_cache(True).root == default_cache_root()
    assert resolve_cache(tmp_path).root == tmp_path
    cache = ArtifactCache(tmp_path)
    assert resolve_cache(cache) is cache


def test_cache_dir_env_overrides_default(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
    assert ArtifactCache().root == tmp_path / "env"


def test_harness_trace_and_reference_round_trip(tmp_path):
    config = ExperimentConfig(scale=0.01, repeats=1)
    cold = Harness(config, cache=ArtifactCache(tmp_path))
    trace = cold.trace("latency_biased")
    reference = cold.reference("latency_biased")

    warm = Harness(config, cache=ArtifactCache(tmp_path))
    with collecting() as col:
        warm_trace = warm.trace("latency_biased")
        warm_reference = warm.reference("latency_biased")
    np.testing.assert_array_equal(warm_trace.block_seq, trace.block_seq)
    np.testing.assert_array_equal(warm_reference.block_instr_counts,
                                  reference.block_instr_counts)
    counters = col.metrics.counters()
    assert counters["cache.hits"] == 2
    assert "interpret.blocks" not in counters   # interpreter never ran


def test_concurrent_writers_leave_no_partial_entries(tmp_path):
    """Racing writers to the same digests must never corrupt an entry.

    Each write lands in a uniquely-named temp file and is published with an
    atomic rename, so readers either miss or see a complete entry — never
    a torn one — and no orphan temp files survive.
    """
    import threading

    cache = ArtifactCache(tmp_path / "store")
    digests = [cache_digest(kind="stats", cell=i) for i in range(8)]
    stats_by_digest = {
        digest: summarize_errors("classic", [0.1 * (i + 1)])
        for i, digest in enumerate(digests)
    }
    array_digest = cache_digest(kind="trace", shared=True)
    payload = np.arange(5000, dtype=np.int64)
    failures: list[str] = []

    def hammer(worker: int) -> None:
        for round_ in range(20):
            digest = digests[(worker + round_) % len(digests)]
            cache.put_stats(digest, stats_by_digest[digest])
            loaded = cache.get_stats(digest)
            if loaded is not None and loaded != stats_by_digest[digest]:
                failures.append(f"torn stats for {digest[:8]}")
            cache.put_arrays("trace", array_digest, block_seq=payload)
            arrays = cache.get_arrays("trace", array_digest, ("block_seq",))
            if arrays is not None and not np.array_equal(
                    arrays["block_seq"], payload):
                failures.append("torn array entry")

    threads = [threading.Thread(target=hammer, args=(i,)) for i in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert not failures
    for digest in digests:
        assert cache.get_stats(digest) == stats_by_digest[digest]
    leftovers = list((tmp_path / "store").rglob("*.tmp"))
    assert leftovers == []


def test_harness_cell_warm_cache_skips_evaluation(tmp_path):
    config = ExperimentConfig(scale=0.01, repeats=1)
    spec = CellSpec("ivybridge", "latency_biased", "precise")
    cold_stats = Harness(config, cache=ArtifactCache(tmp_path)) \
        .evaluate_cell(spec)

    warm = Harness(config, cache=ArtifactCache(tmp_path))
    with collecting() as col:
        warm_stats = warm.evaluate_cell(spec)
    assert warm_stats == cold_stats
    assert col.metrics.counter("harness.cells_evaluated") == 0
    assert col.metrics.counter("cache.hits") == 1
