"""Unit tests for plain sample attribution."""

import numpy as np
import pytest

from repro import IVY_BRIDGE
from repro.core.attribution import attribute_plain, block_of_samples
from repro.pmu.events import Precision, instructions_event
from repro.pmu.periods import PeriodPolicy
from repro.pmu.sampler import Sampler, SamplingConfig


def _collect(execution, base=50, precision=Precision.PDIR):
    config = SamplingConfig(
        event=instructions_event(IVY_BRIDGE, precision),
        period=PeriodPolicy(base=base),
    )
    return Sampler(execution).collect(config, np.random.default_rng(0))


def test_mass_conservation(branchy_execution):
    batch = _collect(branchy_execution)
    profile = attribute_plain(batch)
    assert profile.total_estimate == pytest.approx(
        float(batch.period_weights.sum())
    )
    assert profile.num_samples == batch.num_samples


def test_blocks_match_reported_addresses(branchy_execution):
    batch = _collect(branchy_execution)
    blocks = block_of_samples(batch)
    program = branchy_execution.program
    expected = program.block_indices_at(batch.reported_addresses)
    assert (blocks == expected).all()


def test_metadata_recorded(branchy_execution):
    batch = _collect(branchy_execution)
    profile = attribute_plain(batch, method="my_method")
    assert profile.method == "my_method"
    assert profile.metadata["event"] == "INST_RETIRED.PREC_DIST"
    assert "50" in profile.metadata["period"]


def test_dense_sampling_approaches_reference(branchy_execution):
    """With period 1 and PDIR (exact IP+1), the estimate reproduces the
    reference up to a one-instruction boundary shift."""
    from repro.instrumentation import collect_reference
    from repro.core.accuracy import profile_error

    batch = _collect(branchy_execution, base=2)
    profile = attribute_plain(batch).normalized_to(
        branchy_execution.num_instructions
    )
    ref = collect_reference(branchy_execution.trace)
    error = profile_error(profile, ref).error
    # Half the instructions sampled exactly: small residual error only.
    assert error < 0.15
