"""Unit and property tests for the accuracy-error metric."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AnalysisError
from repro.core.accuracy import accuracy_error, profile_error
from repro.core.profile import Profile
from repro.instrumentation import collect_reference


def test_perfect_profile_scores_zero():
    ref = np.asarray([100.0, 50.0, 0.0])
    assert accuracy_error(ref, ref) == 0.0


def test_fully_misplaced_mass_scores_two():
    ref = np.asarray([100.0, 0.0])
    est = np.asarray([0.0, 100.0])
    assert accuracy_error(est, ref) == pytest.approx(2.0)


def test_paper_definition():
    # err = sum |est - ref| / net_instructions.
    ref = np.asarray([60.0, 40.0])
    est = np.asarray([70.0, 30.0])
    assert accuracy_error(est, ref) == pytest.approx(20.0 / 100.0)


def test_shape_mismatch_rejected():
    with pytest.raises(AnalysisError, match="shape"):
        accuracy_error(np.zeros(3), np.zeros(4))


def test_empty_reference_rejected():
    with pytest.raises(AnalysisError, match="empty"):
        accuracy_error(np.zeros(3), np.zeros(3))


@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1,
                max_size=50))
@settings(max_examples=100, deadline=None)
def test_error_nonnegative_and_zero_iff_equal(values):
    ref = np.asarray(values) + 1.0  # ensure nonzero total
    assert accuracy_error(ref, ref) == 0.0
    est = ref + 1.0
    assert accuracy_error(est, ref) > 0.0


@given(
    st.lists(st.floats(min_value=0, max_value=1e6), min_size=2, max_size=30),
    st.floats(min_value=0.1, max_value=10.0),
)
@settings(max_examples=100, deadline=None)
def test_error_scale_invariance(values, factor):
    """Scaling both profiles by the same factor leaves the error unchanged."""
    ref = np.asarray(values) + 1.0
    est = ref.copy()
    est[0] += 5.0
    base = accuracy_error(est, ref)
    scaled = accuracy_error(est * factor, ref * factor)
    assert scaled == pytest.approx(base, rel=1e-9)


def test_profile_error_result(branchy_trace, branchy_program):
    ref = collect_reference(branchy_trace)
    est = ref.block_instr_counts.astype(np.float64).copy()
    est[0] += 500.0
    profile = Profile(
        program=branchy_program,
        method="test",
        block_instr_estimates=est,
        num_samples=1,
    )
    result = profile_error(profile, ref)
    assert result.error == pytest.approx(500.0 / ref.net_instruction_count)
    assert result.worst_blocks(1)[0][0] == 0
    assert result.method == "test"


def test_profile_error_program_mismatch(branchy_trace, loop_program):
    ref = collect_reference(branchy_trace)
    profile = Profile(
        program=loop_program,
        method="test",
        block_instr_estimates=np.ones(loop_program.num_blocks),
        num_samples=1,
    )
    with pytest.raises(AnalysisError, match="different programs"):
        profile_error(profile, ref)
