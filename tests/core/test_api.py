"""Smoke tests for the stable ``repro.api`` facade."""

import pytest

import repro
from repro import api
from repro.core.tables import TableResult

CONFIG = api.ExperimentConfig(scale=0.01, repeats=1)


def test_facade_is_exported_from_the_top_level_package():
    assert repro.api is api
    for name in ("run_table1", "run_table2", "evaluate_cell",
                 "load_table", "save_table", "CellSpec", "ArtifactCache"):
        assert name in dir(repro)
    assert "run_table1" in repro.__all__
    assert repro.run_table1 is api.run_table1


def test_run_table1_smoke():
    table = api.run_table1(CONFIG, methods=("classic",),
                           workloads=("latency_biased",))
    assert isinstance(table, TableResult)
    assert table.get("ivybridge", "latency_biased", "classic") is not None


def test_run_table2_smoke():
    table = api.run_table2(CONFIG, methods=("classic",), workloads=("mcf",))
    assert table.get("ivybridge", "mcf", "classic") is not None


def test_evaluate_cell_smoke():
    stats = api.evaluate_cell(
        api.CellSpec("ivybridge", "latency_biased", "precise"), CONFIG
    )
    assert stats is not None
    assert stats.repeats == 1
    # Blank cell: no LBR on AMD.
    assert api.evaluate_cell(
        api.CellSpec("magnycours", "latency_biased", "lbr"), CONFIG
    ) is None


def test_run_table1_accepts_cache_paths(tmp_path):
    table = api.run_table1(CONFIG, cache=tmp_path, methods=("classic",),
                           workloads=("latency_biased",))
    again = api.run_table1(CONFIG, cache=str(tmp_path), methods=("classic",),
                           workloads=("latency_biased",))
    assert again.cells == table.cells
    assert api.ArtifactCache(tmp_path).stats().entries > 0


def test_save_and_load_table_round_trip(tmp_path):
    table = api.run_table1(CONFIG, methods=("classic", "lbr"),
                           workloads=("latency_biased",))
    path = api.save_table(table, tmp_path / "table1.json")
    loaded = api.load_table(path)
    assert loaded.title == table.title
    assert loaded.row_labels == table.row_labels
    assert loaded.column_labels == table.column_labels
    assert loaded.cells == table.cells           # per-seed errors preserved
    assert loaded.render() == table.render()


def test_run_campaign_facade(tmp_path):
    spec = api.CampaignSpec(
        name="facade-smoke", workloads=("latency_biased",),
        methods=("classic",), machines=("ivybridge",),
        periods=(100,), seed_counts=(1,), scale=0.01,
    )
    out = tmp_path / "camp"
    result = api.run_campaign(spec, out, cache=tmp_path / "cache")
    assert result.num_points == 1
    assert (out / "report.md").exists()
    assert api.load_campaign(out).to_document() == result.to_document()
    assert api.ArtifactCache(tmp_path / "cache").stats().entries > 0
    # A spec file path works too, and --resume finishes instantly.
    again = api.run_campaign(out / "spec.json", out, resume=True)
    assert again.to_document() == result.to_document()
    for name in ("CampaignSpec", "run_campaign", "load_campaign"):
        assert name in repro.__all__


def test_save_and_load_table_preserve_nan_and_inf_errors(tmp_path):
    import math

    from repro import AccuracyStats

    table = TableResult(title="degenerate",
                        row_labels=[("ivybridge", "mcf")],
                        column_labels=["classic"])
    spec = api.CellSpec("ivybridge", "mcf", "classic", 500)
    table.cells[spec] = AccuracyStats(
        method="classic", errors=(0.25, float("nan"), float("inf")),
    )
    loaded = api.load_table(api.save_table(table, tmp_path / "t.json"))
    errors = loaded.cells[spec].errors
    assert errors[0] == 0.25
    assert math.isnan(errors[1])
    assert math.isinf(errors[2]) and errors[2] > 0


def test_load_table_rejects_unknown_format(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"format": 999, "title": "x", "cells": []}')
    with pytest.raises(ValueError, match="format"):
        api.load_table(path)


# -- versioned request API ---------------------------------------------------


def test_evaluate_request_round_trip_and_resolution():
    request = api.EvaluateRequest(machine="ivybridge", workload="mcf",
                                  method="classic", scale=0.01, repeats=1)
    document = request.to_dict()
    assert document["schema_version"] == api.API_SCHEMA_VERSION
    assert document["period"] is None
    assert api.EvaluateRequest.from_dict(document) == request

    resolved = request.resolved()
    assert resolved.period == 500                 # mcf's default period
    assert resolved.spec() == api.CellSpec("ivybridge", "mcf", "classic", 500)
    assert resolved.config() == api.ExperimentConfig(scale=0.01, repeats=1)


def test_evaluate_request_rejections():
    from repro.errors import RequestError

    good = {"machine": "ivybridge", "workload": "mcf", "method": "classic"}
    cases = [
        {},                                            # missing everything
        dict(good, extra=1),                           # unknown field
        dict(good, machine="z80"),                     # unknown machine
        dict(good, workload="nope"),                   # unknown workload
        dict(good, method="nope"),                     # unknown method
        dict(good, repeats=0),                         # bad repeats
        dict(good, repeats=True),                      # bool is not an int
        dict(good, scale=-1.0),                        # bad scale
        dict(good, period=0),                          # bad period
        dict(good, schema_version=api.API_SCHEMA_VERSION + 1),
    ]
    for document in cases:
        with pytest.raises(RequestError):
            api.EvaluateRequest.from_dict(document)
    with pytest.raises(RequestError, match="JSON object"):
        api.EvaluateRequest.from_dict("not a dict")


def test_evaluate_request_and_cell_agree():
    spec = api.CellSpec("ivybridge", "latency_biased", "precise")
    request = api.EvaluateRequest.from_spec(spec, CONFIG)
    result = api.evaluate_request(request)
    assert not result.blank
    assert result.stats == api.evaluate_cell(spec, CONFIG)


def test_evaluate_result_document_round_trip():
    request = api.EvaluateRequest(machine="ivybridge",
                                  workload="latency_biased",
                                  method="precise", scale=0.01, repeats=1)
    result = api.evaluate_request(request)
    document = result.to_dict()
    assert document["schema_version"] == api.API_SCHEMA_VERSION
    assert document["blank"] is False
    assert document["stats"]["repeats"] == 1
    loaded = api.EvaluateResult.from_dict(document)
    assert loaded.stats == result.stats
    assert loaded.to_json() == result.to_json()
    # Canonical form: sorted keys, compact separators, one trailing newline.
    assert result.to_json().endswith("\n")
    assert '": ' not in result.to_json()


def test_evaluate_result_blank_for_unavailable_method():
    request = api.EvaluateRequest(machine="magnycours", workload="mcf",
                                  method="lbr", scale=0.01, repeats=1)
    result = api.evaluate_request(request)
    assert result.blank
    assert result.stats is None
    assert result.to_dict()["stats"] is None
    loaded = api.EvaluateResult.from_dict(result.to_dict())
    assert loaded.blank and loaded.stats is None


def test_request_api_exported_from_top_level():
    for name in ("API_SCHEMA_VERSION", "EvaluateRequest", "EvaluateResult",
                 "evaluate_request", "RequestError", "ServeError",
                 "EvaluationAborted"):
        assert name in repro.__all__
        assert hasattr(repro, name)


# -- fidelity on the request API ---------------------------------------------


def test_request_without_fidelity_keeps_old_wire_bytes():
    """fidelity=False (the default) must leave requests, results, and their
    JSON exactly as they were before the fidelity fields existed."""
    request = api.EvaluateRequest(machine="ivybridge", workload="mcf",
                                  method="classic", scale=0.01, repeats=1)
    document = request.to_dict()
    assert "fidelity" not in document
    assert "fidelity_top_n" not in document

    result = api.evaluate_request(request)
    assert result.fidelity is None
    assert "fidelity" not in result.to_dict()
    assert "fidelity" not in result.to_json()


def test_request_with_fidelity_round_trips():
    request = api.EvaluateRequest(machine="westmere", workload="phased",
                                  method="classic", scale=0.03, repeats=2,
                                  fidelity=True, fidelity_top_n=5)
    document = request.to_dict()
    assert document["fidelity"] is True
    assert document["fidelity_top_n"] == 5
    assert api.EvaluateRequest.from_dict(document) == request

    result = api.evaluate_request(request)
    assert result.fidelity is not None
    assert result.fidelity.top_n == 5
    assert result.fidelity.repeats == 2
    loaded = api.EvaluateResult.from_dict(result.to_dict())
    assert loaded.fidelity == result.fidelity
    assert loaded.to_json() == result.to_json()


def test_fidelity_request_rejections():
    from repro.errors import RequestError

    good = {"machine": "ivybridge", "workload": "mcf", "method": "classic"}
    for document in (
        dict(good, fidelity="yes"),                   # not a bool
        dict(good, fidelity_top_n=0),                 # not positive
        dict(good, fidelity_top_n=True),              # bool is not an int
    ):
        with pytest.raises(RequestError):
            api.EvaluateRequest.from_dict(document)


def test_fidelity_blank_cell_stays_blank():
    request = api.EvaluateRequest(machine="magnycours", workload="mcf",
                                  method="lbr", scale=0.01, repeats=1,
                                  fidelity=True)
    result = api.evaluate_request(request)
    assert result.blank and result.fidelity is None


def test_run_fidelity_exported_from_top_level():
    for name in ("FidelityStats", "run_fidelity"):
        assert name in api.__all__
        assert hasattr(api, name)
