"""Smoke tests for the stable ``repro.api`` facade."""

import pytest

import repro
from repro import api
from repro.core.tables import TableResult

CONFIG = api.ExperimentConfig(scale=0.01, repeats=1)


def test_facade_is_exported_from_the_top_level_package():
    assert repro.api is api
    for name in ("run_table1", "run_table2", "evaluate_cell",
                 "load_table", "save_table", "CellSpec", "ArtifactCache"):
        assert name in dir(repro)
    assert "run_table1" in repro.__all__
    assert repro.run_table1 is api.run_table1


def test_run_table1_smoke():
    table = api.run_table1(CONFIG, methods=("classic",),
                           workloads=("latency_biased",))
    assert isinstance(table, TableResult)
    assert table.get("ivybridge", "latency_biased", "classic") is not None


def test_run_table2_smoke():
    table = api.run_table2(CONFIG, methods=("classic",), workloads=("mcf",))
    assert table.get("ivybridge", "mcf", "classic") is not None


def test_evaluate_cell_smoke():
    stats = api.evaluate_cell(
        api.CellSpec("ivybridge", "latency_biased", "precise"), CONFIG
    )
    assert stats is not None
    assert stats.repeats == 1
    # Blank cell: no LBR on AMD.
    assert api.evaluate_cell(
        api.CellSpec("magnycours", "latency_biased", "lbr"), CONFIG
    ) is None


def test_run_table1_accepts_cache_paths(tmp_path):
    table = api.run_table1(CONFIG, cache=tmp_path, methods=("classic",),
                           workloads=("latency_biased",))
    again = api.run_table1(CONFIG, cache=str(tmp_path), methods=("classic",),
                           workloads=("latency_biased",))
    assert again.cells == table.cells
    assert api.ArtifactCache(tmp_path).stats().entries > 0


def test_save_and_load_table_round_trip(tmp_path):
    table = api.run_table1(CONFIG, methods=("classic", "lbr"),
                           workloads=("latency_biased",))
    path = api.save_table(table, tmp_path / "table1.json")
    loaded = api.load_table(path)
    assert loaded.title == table.title
    assert loaded.row_labels == table.row_labels
    assert loaded.column_labels == table.column_labels
    assert loaded.cells == table.cells           # per-seed errors preserved
    assert loaded.render() == table.render()


def test_load_table_rejects_unknown_format(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"format": 999, "title": "x", "cells": []}')
    with pytest.raises(ValueError, match="format"):
        api.load_table(path)
