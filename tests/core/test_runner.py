"""Unit tests for run_method / evaluate_method."""

import numpy as np
import pytest

from repro import Machine
from repro.core.runner import cell_seed, evaluate_method, run_method
from repro.instrumentation import collect_reference


def test_run_method_returns_normalized_profile(branchy_execution):
    profile, batch = run_method(branchy_execution, "precise", 50, rng=0)
    assert profile.method == "precise"
    assert profile.total_estimate == pytest.approx(
        branchy_execution.num_instructions
    )
    assert batch.num_samples > 0


def test_run_method_unnormalized(branchy_execution):
    profile, batch = run_method(
        branchy_execution, "precise", 50, rng=0, normalize=False
    )
    assert profile.total_estimate == pytest.approx(
        float(batch.period_weights.sum())
    )


def test_run_method_accepts_generator_and_seed(branchy_execution):
    p1, _ = run_method(branchy_execution, "classic", 50,
                       rng=np.random.default_rng(5))
    p2, _ = run_method(branchy_execution, "classic", 50, rng=5)
    assert np.allclose(p1.block_instr_estimates, p2.block_instr_estimates)


def test_cell_seed_is_stable_and_distinct():
    seed = cell_seed("ivybridge", "mcf", "precise_prime_rand", 500)
    assert seed == cell_seed("ivybridge", "mcf", "precise_prime_rand", 500)
    others = {
        cell_seed("westmere", "mcf", "precise_prime_rand", 500),
        cell_seed("ivybridge", "callchain", "precise_prime_rand", 500),
        cell_seed("ivybridge", "mcf", "precise", 500),
        cell_seed("ivybridge", "mcf", "precise_prime_rand", 1000),
    }
    assert seed not in others


def test_run_method_default_rng_is_deterministic(branchy_execution):
    # Regression: rng=None used to mean fresh OS entropy, so randomized-
    # period methods silently depended on ambient state.  It now derives
    # the per-cell seed, making every call reproducible.
    p1, _ = run_method(branchy_execution, "precise_prime_rand", 50)
    p2, _ = run_method(branchy_execution, "precise_prime_rand", 50)
    assert np.array_equal(p1.block_instr_estimates, p2.block_instr_estimates)
    # And it is the per-cell seed, not some other fixed constant.
    seeded, _ = run_method(
        branchy_execution, "precise_prime_rand", 50,
        rng=cell_seed(branchy_execution.uarch.name,
                      branchy_execution.program.name,
                      "precise_prime_rand", 50),
    )
    assert np.array_equal(p1.block_instr_estimates,
                          seeded.block_instr_estimates)


def test_evaluate_method_repeats(branchy_execution):
    stats = evaluate_method(branchy_execution, "precise", 50,
                            seeds=range(4))
    assert stats.repeats == 4
    assert stats.method == "precise"
    assert 0 <= stats.mean_error <= 2.0


def test_evaluate_method_deterministic_in_seeds(branchy_execution):
    a = evaluate_method(branchy_execution, "classic", 50, seeds=[1, 2])
    b = evaluate_method(branchy_execution, "classic", 50, seeds=[1, 2])
    assert a.errors == b.errors


def test_evaluate_accepts_precomputed_reference(branchy_execution):
    ref = collect_reference(branchy_execution.trace)
    stats = evaluate_method(branchy_execution, "precise", 50,
                            seeds=[0], reference=ref)
    assert stats.repeats == 1


def test_run_method_accepts_preresolved_method(branchy_execution):
    from repro.core.methods import resolve_method

    resolved = resolve_method("precise", branchy_execution.uarch, 50)
    p1, _ = run_method(branchy_execution, "precise", 50, rng=3,
                       resolved=resolved)
    p2, _ = run_method(branchy_execution, "precise", 50, rng=3)
    assert np.allclose(p1.block_instr_estimates, p2.block_instr_estimates)


def test_evaluate_method_resolves_once_per_repeat_set(branchy_execution):
    from repro.obs import collecting

    with collecting() as col:
        evaluate_method(branchy_execution, "precise", 50, seeds=range(5))
    assert col.metrics.counter("runner.resolve_reused") == 4


def test_all_methods_run_on_their_machines():
    from repro.core.methods import METHOD_KEYS, method_available
    from repro.cpu.uarch import ALL_UARCHES
    from repro.cpu.interpreter import run_program
    from repro.cpu.trace import Trace
    from tests.conftest import build_branchy

    program = build_branchy(iterations=600, seed=4)
    trace = Trace(program, run_program(program).block_seq)
    for uarch in ALL_UARCHES:
        execution = Machine(uarch).attach(trace)
        for key in METHOD_KEYS:
            if not method_available(key, uarch):
                continue
            profile, _ = run_method(execution, key, 64, rng=0)
            assert profile.total_estimate > 0, (uarch.name, key)
