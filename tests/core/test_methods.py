"""Unit tests for the Table 3 method catalogue and per-machine resolution."""

import pytest

from repro.errors import PMUConfigError
from repro.cpu.uarch import IVY_BRIDGE, MAGNY_COURS, WESTMERE
from repro.core.methods import (
    Attribution,
    METHOD_KEYS,
    METHODS,
    get_method,
    method_available,
    resolve_method,
)
from repro.pmu.events import EventKind, Precision
from repro.pmu.periods import Randomization


def test_table3_rows_present_in_order():
    table3 = [m.key for m in METHODS if m.in_table3]
    assert table3 == [
        "classic", "precise", "precise_rand", "precise_prime",
        "precise_prime_rand", "pdir_fix", "lbr",
    ]


def test_get_method_unknown():
    with pytest.raises(PMUConfigError, match="unknown method"):
        get_method("magic")


def test_classic_uses_fixed_imprecise_counter_on_intel():
    resolved = resolve_method("classic", IVY_BRIDGE, 2000)
    assert resolved.config.event.precision is Precision.IMPRECISE
    assert resolved.config.event.fixed_counter
    assert resolved.config.period.base == 2000
    assert resolved.attribution is Attribution.PLAIN


def test_classic_on_amd_has_no_fixed_counter():
    resolved = resolve_method("classic", MAGNY_COURS, 2000)
    assert not resolved.config.event.fixed_counter
    assert resolved.config.event.precision is Precision.IMPRECISE


def test_precise_resolution_per_vendor():
    intel = resolve_method("precise", IVY_BRIDGE, 2000)
    assert intel.config.event.precision is Precision.PEBS
    amd = resolve_method("precise", MAGNY_COURS, 2000)
    assert amd.config.event.precision is Precision.IBS
    assert amd.config.event.kind is EventKind.UOPS


def test_prime_period_resolution():
    resolved = resolve_method("precise_prime", IVY_BRIDGE, 2000)
    assert resolved.config.period.base == 2003


def test_randomization_resolution_per_vendor():
    intel = resolve_method("precise_rand", IVY_BRIDGE, 2000)
    assert intel.config.period.randomization is Randomization.SOFTWARE
    amd = resolve_method("precise_rand", MAGNY_COURS, 2000)
    assert amd.config.period.randomization is Randomization.HARDWARE_4LSB


def test_pdir_fix_only_on_ivybridge():
    assert method_available("pdir_fix", IVY_BRIDGE)
    assert not method_available("pdir_fix", WESTMERE)
    assert not method_available("pdir_fix", MAGNY_COURS)
    resolved = resolve_method("pdir_fix", IVY_BRIDGE, 2000)
    assert resolved.config.event.precision is Precision.PDIR
    assert resolved.config.collect_lbr
    assert resolved.attribution is Attribution.IP_FIX


def test_lbr_needs_lbr_facility():
    assert method_available("lbr", WESTMERE)
    assert method_available("lbr", IVY_BRIDGE)
    assert not method_available("lbr", MAGNY_COURS)
    resolved = resolve_method("lbr", WESTMERE, 2000)
    assert resolved.config.event.kind is EventKind.TAKEN_BRANCHES
    assert resolved.attribution is Attribution.LBR_COUNTS


def test_precise_fix_supplemental():
    spec = get_method("precise_fix")
    assert not spec.in_table3
    assert method_available("precise_fix", WESTMERE)
    assert not method_available("precise_fix", MAGNY_COURS)


def test_all_methods_available_somewhere():
    for key in METHOD_KEYS:
        assert any(
            method_available(key, u)
            for u in (MAGNY_COURS, WESTMERE, IVY_BRIDGE)
        ), key


def test_lbr_events_match_paper_names():
    # Footnote 1 / Section 4.2: the taken-branches events per machine.
    ivb = resolve_method("lbr", IVY_BRIDGE, 2000)
    assert ivb.config.event.name == "BR_INST_RETIRED.NEAR_TAKEN"
    wsm = resolve_method("lbr", WESTMERE, 2000)
    assert wsm.config.event.name == "BR_INST_EXEC.TAKEN"


def test_random_phase_enabled_for_repeat_variance():
    resolved = resolve_method("classic", IVY_BRIDGE, 2000)
    assert resolved.config.random_phase
