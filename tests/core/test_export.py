"""Unit tests for table export."""

import csv
import io
import json

import pytest

from repro.core.experiment import CellSpec
from repro.core.export import load_table_json, table_to_csv, table_to_json
from repro.core.stats import summarize_errors
from repro.core.tables import TableResult


@pytest.fixture()
def table():
    result = TableResult(
        title="test table",
        row_labels=[("ivybridge", "mcf"), ("westmere", "mcf")],
        column_labels=["classic", "lbr"],
    )
    result.cells[CellSpec("ivybridge", "mcf", "classic", 500)] = \
        summarize_errors("classic", [0.5, 0.6])
    result.cells[CellSpec("ivybridge", "mcf", "lbr", 500)] = summarize_errors(
        "lbr", [0.1]
    )
    result.cells[CellSpec("westmere", "mcf", "classic", 500)] = \
        summarize_errors("classic", [0.7])
    result.cells[CellSpec("westmere", "mcf", "lbr", 500)] = None  # blank cell
    return result


def test_csv_roundtrip(table):
    text = table_to_csv(table)
    rows = list(csv.DictReader(io.StringIO(text)))
    assert len(rows) == 4
    first = [r for r in rows if r["machine"] == "ivybridge"
             and r["method"] == "classic"][0]
    assert float(first["mean_error"]) == pytest.approx(0.55)
    blank = [r for r in rows if r["machine"] == "westmere"
             and r["method"] == "lbr"][0]
    assert blank["mean_error"] == ""


def test_json_roundtrip(table):
    text = table_to_json(table)
    document = load_table_json(text)
    assert document["title"] == "test table"
    assert len(document["cells"]) == 4
    blanks = [c for c in document["cells"] if c["mean_error"] is None]
    assert len(blanks) == 1


def test_load_rejects_foreign_documents():
    with pytest.raises(ValueError, match="not a repro table"):
        load_table_json(json.dumps({"something": "else"}))
