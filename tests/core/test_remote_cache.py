"""Cache federation: RemoteCache against a live daemon's /v1/cache routes.

A "hub" daemon holds the shared store; RemoteCache nodes read through it
and push writes back.  Corruption — in transit or at rest — must always
degrade to a miss, and a warm federated node must answer evaluations with
zero re-simulation.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro import api
from repro.core.cache import (
    CHECKSUM_HEADER,
    ArtifactCache,
    RemoteCache,
    cache_digest,
)
from repro.core.stats import AccuracyStats
from repro.obs import collecting
from repro.serve import ProfilingServer, ServerConfig

STATS = AccuracyStats(method="classic", errors=(1.0, 2.0, 3.0))


@pytest.fixture()
def hub(tmp_path):
    """A serve daemon sharing its artifact cache over /v1/cache."""
    server = ProfilingServer(ServerConfig(
        port=0, workers=1, queue_size=4,
        cache=ArtifactCache(tmp_path / "hub"),
    ))
    server.start()
    yield server
    server.stop()


def test_remote_hit_is_written_through_locally(hub, tmp_path):
    digest = cache_digest(cell="remote-hit")
    hub.config.cache.put_stats(digest, STATS)

    node = RemoteCache(tmp_path / "node", remote=hub.url)
    with collecting() as collector:
        assert node.get_stats(digest) == STATS
    counters = collector.metrics.counters()
    assert counters["cache.remote_hits"] == 1
    assert counters["cache.hits"] == 1

    # Write-through: the second lookup never touches the network.
    with collecting() as collector:
        assert node.get_stats(digest) == STATS
    counters = collector.metrics.counters()
    assert "cache.remote_hits" not in counters
    assert counters["cache.hits"] == 1


def test_remote_miss_is_a_plain_miss(hub, tmp_path):
    node = RemoteCache(tmp_path / "node", remote=hub.url)
    with collecting() as collector:
        assert node.get_stats(cache_digest(cell="absent")) is None
    counters = collector.metrics.counters()
    assert counters["cache.remote_misses"] == 1
    assert counters["cache.misses"] == 1


def test_local_write_is_pushed_to_the_hub(hub, tmp_path):
    digest = cache_digest(cell="write-through")
    node_a = RemoteCache(tmp_path / "a", remote=hub.url)
    with collecting() as collector:
        node_a.put_stats(digest, STATS)
    assert collector.metrics.counters()["cache.remote_writes"] == 1
    assert hub.config.cache.get_stats(digest) == STATS

    # A second node now sees node A's work through the hub.
    node_b = RemoteCache(tmp_path / "b", remote=hub.url)
    assert node_b.get_stats(digest) == STATS


def test_corrupt_stored_entry_is_a_miss(hub, tmp_path):
    # The hub serves the garbage faithfully (its transfer checksum is of
    # the stored bytes), so the *format* layer must reject it.
    digest = cache_digest(cell="rotten")
    assert hub.config.cache.write_entry("stats", digest, b"not json at all")
    node = RemoteCache(tmp_path / "node", remote=hub.url)
    with collecting() as collector:
        assert node.get_stats(digest) is None
    counters = collector.metrics.counters()
    assert counters["cache.corrupt"] == 1


class _LyingHandler(BaseHTTPRequestHandler):
    """Serves bodies whose checksum header never matches (bit rot in
    transit, a proxy rewriting bodies, a hostile cache)."""

    def do_GET(self):  # noqa: N802
        body = json.dumps({"format": 1, "method": "classic",
                           "errors": [1.0]}).encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Length", str(len(body)))
        self.send_header(CHECKSUM_HEADER, "0" * 64)
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format, *args):  # noqa: A002
        pass


def test_mismatched_transfer_checksum_is_a_miss(tmp_path):
    liar = ThreadingHTTPServer(("127.0.0.1", 0), _LyingHandler)
    thread = threading.Thread(target=liar.serve_forever, daemon=True)
    thread.start()
    try:
        host, port = liar.server_address[:2]
        node = RemoteCache(tmp_path / "node",
                           remote=f"http://{host}:{port}")
        with collecting() as collector:
            assert node.get_stats(cache_digest(cell="lied-about")) is None
        counters = collector.metrics.counters()
        assert counters["cache.remote_corrupt"] == 1
        assert "cache.remote_hits" not in counters
    finally:
        liar.shutdown()
        liar.server_close()


def test_dead_remote_degrades_to_a_local_cache(tmp_path):
    node = RemoteCache(tmp_path / "node", remote="http://127.0.0.1:9",
                       timeout_s=0.5)
    digest = cache_digest(cell="offline")
    with collecting() as collector:
        node.put_stats(digest, STATS)          # must not raise
        assert node.get_stats(digest) == STATS  # local store still works
    assert collector.metrics.counters()["cache.remote_errors"] >= 1


def test_concurrent_puts_of_the_same_digest_are_safe(hub, tmp_path):
    digest = cache_digest(cell="stampede")
    nodes = [RemoteCache(tmp_path / f"n{i}", remote=hub.url)
             for i in range(6)]
    threads = [threading.Thread(target=node.put_stats, args=(digest, STATS))
               for node in nodes]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    # Last-rename-wins with complete content: the entry is whole and valid
    # on the hub and through a fresh reader.
    assert hub.config.cache.get_stats(digest) == STATS
    reader = RemoteCache(tmp_path / "reader", remote=hub.url)
    assert reader.get_stats(digest) == STATS


def test_warm_federated_run_evaluates_nothing(hub, tmp_path):
    request = api.EvaluateRequest(
        machine="ivybridge", workload="latency_biased", method="precise",
        scale=0.01, repeats=1,
    )
    node_a = RemoteCache(tmp_path / "a", remote=hub.url)
    warm = api.evaluate_request(request, cache=node_a)

    # A different node, cold local store: everything it needs must come
    # from the hub, with zero re-simulation.
    node_b = RemoteCache(tmp_path / "b", remote=hub.url)
    with collecting() as collector:
        served = api.evaluate_request(request, cache=node_b)
    counters = collector.metrics.counters()
    assert "harness.cells_evaluated" not in counters
    assert counters["cache.remote_hits"] >= 1
    assert served.to_json() == warm.to_json()
