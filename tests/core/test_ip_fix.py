"""Unit tests for the LBR-based IP+1 offset fix.

With PDIR the capture is exactly the instruction after the trigger, so the
fix must recover precisely the trigger's block — checkable against the
ground-truth trace for every sample.
"""

import numpy as np
import pytest

from repro import IVY_BRIDGE
from repro.errors import AnalysisError
from repro.core.ip_fix import attribute_with_ip_fix, corrected_blocks
from repro.pmu.events import Precision, instructions_event
from repro.pmu.periods import PeriodPolicy
from repro.pmu.sampler import Sampler, SamplingConfig


def _collect(execution, collect_lbr=True, base=37):
    config = SamplingConfig(
        event=instructions_event(IVY_BRIDGE, Precision.PDIR),
        period=PeriodPolicy(base=base),
        collect_lbr=collect_lbr,
    )
    return Sampler(execution).collect(config, np.random.default_rng(0))


def test_requires_lbr(branchy_execution):
    batch = _collect(branchy_execution, collect_lbr=False)
    with pytest.raises(AnalysisError, match="requires"):
        corrected_blocks(batch)


def test_fix_recovers_trigger_block_exactly(branchy_execution):
    batch = _collect(branchy_execution)
    corrected = corrected_blocks(batch)
    trace = branchy_execution.trace
    expected = trace.instr_block[batch.trigger_idx]
    assert (corrected == expected).all()


def test_fix_recovers_trigger_block_on_call_chain(call_trace):
    from repro import Machine
    execution = Machine(IVY_BRIDGE).attach(call_trace)
    batch = _collect(execution, base=7)
    corrected = corrected_blocks(batch)
    expected = call_trace.instr_block[batch.trigger_idx]
    assert (corrected == expected).all()


def test_fix_changes_boundary_samples_only(branchy_execution):
    batch = _collect(branchy_execution)
    trace = branchy_execution.trace
    plain = trace.instr_block[batch.reported_idx]
    corrected = corrected_blocks(batch)
    changed = corrected != plain
    # Samples that moved must have been at block starts.
    starts = trace.program.tables.block_start_addr[plain[changed]]
    assert (batch.reported_addresses[changed] == starts).all()


def test_attribution_mass_conserved(branchy_execution):
    batch = _collect(branchy_execution)
    profile = attribute_with_ip_fix(batch)
    assert profile.total_estimate == pytest.approx(
        float(batch.period_weights.sum())
    )
    assert profile.metadata["ip_fix"] is True
