"""The tiered cache: CacheConfig, budgets, LRU eviction, pinning.

DESIGN.md §12: an :class:`ArtifactCache` is an ordered stack of
:class:`CacheTier` layers, and eviction under any budget must be invisible
to correctness — an evicted entry is indistinguishable from one never
cached.  These tests exercise the tier API directly (MemoryTier/DiskTier),
the pressure invariants (pinned in-flight entries survive a full LRU
sweep; concurrent readers race eviction safely), and the headline
acceptance property: a table built under a tiny byte budget is
byte-identical to one built unbounded, with evictions observed.
"""

import json
import threading

import numpy as np
import pytest

from repro import api
from repro.errors import RequestError
from repro.obs import collecting
from repro.core.cache import (
    CACHE_STATS_SCHEMA_VERSION,
    ArtifactCache,
    CacheConfig,
    DiskTier,
    MemoryTier,
    RemoteCache,
    RemoteTier,
    cache_digest,
    resolve_cache,
)
from repro.core.experiment import CellSpec, ExperimentConfig, Harness
from repro.core.stats import summarize_errors


def _fill(cache: ArtifactCache, n: int, size: int = 4096) -> list[str]:
    """Store ``n`` distinct trace entries of roughly ``size`` bytes."""
    digests = []
    for i in range(n):
        digest = cache_digest(kind="trace", cell=i, pad=size)
        # Seeded random payload: incompressible, so the stored entry
        # really occupies ~size bytes and budgets behave predictably.
        rng = np.random.default_rng(1234 + i)
        payload = rng.integers(0, 2 ** 62, size=size // 8, dtype=np.int64)
        cache.put_arrays("trace", digest, block_seq=payload)
        digests.append(digest)
    return digests


# -- CacheConfig -----------------------------------------------------------


def test_cache_config_round_trip():
    config = CacheConfig(root="/tmp/x", max_bytes=1 << 20, hot_entries=8,
                         remote="http://hub:1", remote_timeout_s=2.5)
    assert CacheConfig.from_dict(config.to_dict()) == config
    # Defaults survive a partial document.
    assert CacheConfig.from_dict({"max_bytes": 4096}).hot_entries == 0


def test_cache_config_rejects_unknown_fields_and_bad_values():
    with pytest.raises(RequestError, match="unknown cache config field"):
        CacheConfig.from_dict({"max_bytes": 1, "surprise": True})
    with pytest.raises(RequestError):
        CacheConfig.from_dict([1, 2])
    with pytest.raises(RequestError, match="max_bytes"):
        CacheConfig(max_bytes=0)
    with pytest.raises(RequestError, match="hot_entries"):
        CacheConfig(hot_entries=-1)
    with pytest.raises(RequestError, match="eviction policy"):
        CacheConfig(policy="fifo")
    with pytest.raises(RequestError, match="pinning"):
        CacheConfig(pinning="maybe")


def test_cache_config_is_picklable_and_buildable(tmp_path):
    import pickle

    config = CacheConfig(root=str(tmp_path), max_bytes=1 << 16, hot_entries=4)
    clone = pickle.loads(pickle.dumps(config))
    cache = clone.build()
    assert cache.root == tmp_path
    assert [tier.name for tier in cache.tiers] == ["mem", "disk"]


def test_resolve_cache_accepts_config(tmp_path):
    cache = resolve_cache(CacheConfig(root=str(tmp_path), hot_entries=2))
    assert isinstance(cache, ArtifactCache)
    assert cache.root == tmp_path
    assert isinstance(cache.tiers[0], MemoryTier)


def test_describe_round_trips_through_workers(tmp_path):
    cache = ArtifactCache(tmp_path, config=CacheConfig(max_bytes=1 << 20))
    described = cache.describe()
    assert described.root == str(tmp_path)
    rebuilt = resolve_cache(described)
    assert rebuilt.root == cache.root
    assert rebuilt.config.max_bytes == 1 << 20


def test_api_exports_cache_config():
    assert api.CacheConfig is CacheConfig
    assert api.CACHE_STATS_SCHEMA_VERSION == CACHE_STATS_SCHEMA_VERSION
    import repro

    assert repro.CacheConfig is CacheConfig


# -- tier stacking ---------------------------------------------------------


def test_default_stack_is_disk_only(tmp_path):
    cache = ArtifactCache(tmp_path)
    assert [tier.name for tier in cache.tiers] == ["disk"]


def test_remote_config_appends_remote_tier(tmp_path):
    cache = ArtifactCache(tmp_path, config=CacheConfig(remote="http://h:1"))
    assert [tier.name for tier in cache.tiers] == ["disk", "remote"]
    assert isinstance(cache.tiers[-1], RemoteTier)


def test_remote_cache_alias_builds_the_same_stack(tmp_path):
    node = RemoteCache(tmp_path, remote="http://hub:1/", timeout_s=0.5)
    assert node.remote == "http://hub:1"
    assert [tier.name for tier in node.tiers] == ["disk", "remote"]
    assert node.tiers[-1].timeout_s == 0.5


def test_memory_tier_serves_without_disk_reads(tmp_path):
    cache = ArtifactCache(tmp_path, config=CacheConfig(hot_entries=4))
    digest = cache_digest(kind="stats", hot=1)
    cache.put_stats(digest, summarize_errors("classic", [0.25]))
    # Destroy the disk copy; the hot tier still answers.
    cache._path("stats", digest, ".json").unlink()
    loaded = cache.get_stats(digest)
    assert loaded is not None and loaded.errors == (0.25,)
    mem = cache.tiers[0].stats()
    assert mem.tier == "mem" and mem.hits >= 1


def test_memory_tier_decodes_arrays_once_and_shares(tmp_path):
    cache = ArtifactCache(tmp_path, config=CacheConfig(hot_entries=4))
    digest = cache_digest(kind="trace", hot=2)
    cache.put_arrays("trace", digest, block_seq=np.arange(64))
    first = cache.get_arrays("trace", digest, ("block_seq",))
    second = cache.get_arrays("trace", digest, ("block_seq",))
    # Same decoded ndarray object handed to both callers: no re-decode.
    assert first["block_seq"] is second["block_seq"]


def test_memory_tier_lru_evicts_by_entry_count():
    tier = MemoryTier(max_entries=2)
    tier.store("stats", "a" * 64, b"one")
    tier.store("stats", "b" * 64, b"two")
    assert tier.load("stats", "a" * 64) == b"one"   # refresh "a"
    tier.store("stats", "c" * 64, b"three")          # evicts "b" (LRU)
    assert tier.load("stats", "b" * 64) is None
    assert tier.load("stats", "a" * 64) == b"one"
    snapshot = tier.stats()
    assert snapshot.entries == 2 and snapshot.evictions == 1


# -- disk budget / LRU / pinning ------------------------------------------


def test_disk_budget_evicts_lru_first(tmp_path):
    cache = ArtifactCache(tmp_path,
                          config=CacheConfig(max_bytes=3 * 4096))
    digests = _fill(cache, 2)
    # Touch the first entry so the second becomes least-recently used.
    assert cache.get_arrays("trace", digests[0], ("block_seq",)) is not None
    _fill(cache, 8, size=4096)
    disk = cache.tiers[0].stats()
    assert disk.tier == "disk"
    assert disk.evictions > 0
    assert disk.bytes <= 3 * 4096


def test_evicted_entry_is_a_plain_miss(tmp_path):
    cache = ArtifactCache(tmp_path, config=CacheConfig(max_bytes=4096))
    digests = _fill(cache, 6)
    with collecting() as col:
        survivors = [d for d in digests
                     if cache.get_arrays("trace", d, ("block_seq",))
                     is not None]
    assert len(survivors) < len(digests)
    assert col.metrics.counter("cache.corrupt") == 0   # miss, not corruption


def test_partially_evicted_entry_loads_as_miss(tmp_path):
    """A file deleted behind the tier's back (another process's eviction)
    is a miss and the accounting repairs itself."""
    cache = ArtifactCache(tmp_path, config=CacheConfig(max_bytes=1 << 20))
    digest = _fill(cache, 1)[0]
    cache._path("trace", digest, ".npz").unlink()
    with collecting() as col:
        assert cache.get_arrays("trace", digest, ("block_seq",)) is None
    assert col.metrics.counter("cache.misses") == 1
    assert cache.tiers[0].stats().entries == 0


def test_corrupt_entry_under_budget_still_counts_corrupt(tmp_path):
    cache = ArtifactCache(tmp_path, config=CacheConfig(max_bytes=1 << 20))
    digest = _fill(cache, 1)[0]
    cache._path("trace", digest, ".npz").write_bytes(b"garbage")
    with collecting() as col:
        assert cache.get_arrays("trace", digest, ("block_seq",)) is None
    assert col.metrics.counter("cache.corrupt") == 1


def test_pinned_entries_survive_a_full_lru_sweep(tmp_path):
    cache = ArtifactCache(tmp_path, config=CacheConfig(max_bytes=4096))
    pinned = cache_digest(kind="trace", keep=True)
    cache.put_arrays("trace", pinned, block_seq=np.arange(512))
    with cache.pin_entry("trace", pinned):
        # Flood far past the budget: everything unpinned gets swept.
        _fill(cache, 10)
        assert cache.get_arrays("trace", pinned,
                                ("block_seq",)) is not None
    # After unpin the budget is settled; the entry may now be evicted,
    # but the sweep recorded evictions either way.
    assert cache.tiers[0].stats().evictions > 0


def test_unpin_reenforces_the_budget(tmp_path):
    cache = ArtifactCache(tmp_path, config=CacheConfig(max_bytes=4096))
    big = cache_digest(kind="trace", big=True)
    rng = np.random.default_rng(99)
    with cache.pin_entry("trace", big):
        cache.put_arrays("trace", big,
                         block_seq=rng.integers(0, 2 ** 62, size=4096,
                                                dtype=np.int64))
        over = cache.tiers[0].stats()
        assert over.bytes > 4096          # pins may overshoot the budget
    assert cache.tiers[0].stats().bytes <= 4096


def test_trim_enforces_budget_offline(tmp_path):
    unbounded = ArtifactCache(tmp_path)
    _fill(unbounded, 6)
    budgeted = ArtifactCache(tmp_path, config=CacheConfig(max_bytes=8192))
    evicted = budgeted.enforce_budget()
    assert evicted > 0
    assert budgeted.tiers[0].stats().bytes <= 8192


def test_concurrent_readers_race_eviction_safely(tmp_path):
    """Readers vs. a tiny budget: every load is a clean hit or a clean
    miss — never an exception, never torn data."""
    cache = ArtifactCache(tmp_path, config=CacheConfig(max_bytes=3 * 4096))
    digests = [cache_digest(kind="trace", stress=i) for i in range(6)]
    payloads = {d: np.random.default_rng(7 + i).integers(
                    0, 2 ** 62, size=512, dtype=np.int64)
                for i, d in enumerate(digests)}
    failures: list[str] = []

    def reader(worker: int) -> None:
        for round_ in range(25):
            digest = digests[(worker + round_) % len(digests)]
            arrays = cache.get_arrays("trace", digest, ("block_seq",))
            if arrays is not None and not np.array_equal(
                    arrays["block_seq"], payloads[digest]):
                failures.append(f"torn read of {digest[:8]}")

    def writer(worker: int) -> None:
        for round_ in range(25):
            digest = digests[(worker + round_) % len(digests)]
            cache.put_arrays("trace", digest, block_seq=payloads[digest])

    threads = [threading.Thread(target=reader, args=(i,)) for i in range(4)]
    threads += [threading.Thread(target=writer, args=(i,)) for i in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not failures
    assert cache.tiers[0].stats().evictions > 0


# -- per-tier observability ------------------------------------------------


def test_per_tier_counters_flow_to_obs(tmp_path):
    cache = ArtifactCache(tmp_path, config=CacheConfig(max_bytes=4096,
                                                       hot_entries=2))
    with collecting() as col:
        _fill(cache, 4)
        cache.get_stats(cache_digest(kind="stats", absent=True))
        cache.refresh_gauges()
    counters = col.metrics.counters()
    assert counters["cache.disk.evictions"] > 0
    assert counters["cache.mem.misses"] >= 1
    assert counters["cache.disk.misses"] >= 1
    gauges = col.metrics.gauges()
    assert "cache.disk.bytes" in gauges
    assert "cache.mem.entries" in gauges


def test_stats_document_is_versioned_with_tiers(tmp_path):
    cache = ArtifactCache(tmp_path, config=CacheConfig(hot_entries=2))
    cache.put_stats(cache_digest(kind="stats", doc=1),
                    summarize_errors("classic", [0.1]))
    document = cache.stats().to_dict()
    assert document["schema_version"] == CACHE_STATS_SCHEMA_VERSION
    # Pre-versioning top-level fields preserved for existing consumers.
    assert set(document) >= {"root", "entries", "total_bytes", "by_kind"}
    tiers = {tier["tier"]: tier for tier in document["tiers"]}
    assert set(tiers) == {"mem", "disk"}
    for tier in tiers.values():
        assert set(tier) >= {"hits", "misses", "evictions",
                             "bytes", "entries"}
    json.dumps(document)                                # JSON-serializable


# -- the headline invariant ------------------------------------------------


def test_tiny_budget_table_is_byte_identical_to_unbounded(tmp_path):
    """Eviction is invisible to correctness: a Table-1 slice built under a
    budget small enough to evict continuously byte-matches the unbounded
    build, and the evictions actually happened."""
    config = ExperimentConfig(scale=0.01, repeats=1,
                              machines=("ivybridge",))
    workloads = ("latency_biased",)
    methods = ("classic", "precise")

    unbounded = api.run_table1(config, cache=CacheConfig(root=str(tmp_path / "a")),
                               workloads=workloads, methods=methods)
    with collecting() as col:
        budgeted = api.run_table1(
            config,
            cache=CacheConfig(root=str(tmp_path / "b"), max_bytes=512,
                              hot_entries=2),
            workloads=workloads, methods=methods,
        )
    reference = json.dumps(api.table_document(unbounded), sort_keys=True)
    candidate = json.dumps(api.table_document(budgeted), sort_keys=True)
    assert reference.encode() == candidate.encode()
    assert col.metrics.counter("cache.disk.evictions") > 0


def test_warm_cell_survives_hot_tier(tmp_path):
    """A budgeted, hot-tiered cache still short-circuits re-evaluation."""
    config = ExperimentConfig(scale=0.01, repeats=1)
    spec = CellSpec("ivybridge", "latency_biased", "precise")
    cache_config = CacheConfig(root=str(tmp_path), max_bytes=1 << 22,
                               hot_entries=8)
    cold = Harness(config, cache=cache_config.build()).evaluate_cell(spec)
    warm = Harness(config, cache=cache_config.build())
    with collecting() as col:
        assert warm.evaluate_cell(spec) == cold
    assert col.metrics.counter("harness.cells_evaluated") == 0
    assert col.metrics.counter("cache.hits") == 1


def test_parallel_build_matches_serial_under_budget(tmp_path):
    """Worker processes rebuild the budgeted stack from the shipped
    CacheConfig; results stay bit-identical to the serial path."""
    config = ExperimentConfig(scale=0.01, repeats=1,
                              machines=("ivybridge",))
    workloads = ("latency_biased", "callchain")
    methods = ("classic", "precise")
    serial = api.run_table1(config, workloads=workloads, methods=methods)
    parallel = api.run_table1(
        config, jobs=2,
        cache=CacheConfig(root=str(tmp_path), max_bytes=16 * 4096),
        workloads=workloads, methods=methods,
    )
    assert json.dumps(api.table_document(serial), sort_keys=True) \
        == json.dumps(api.table_document(parallel), sort_keys=True)


def test_disk_tier_seeds_accounting_from_existing_store(tmp_path):
    """A fresh process over an existing store learns its occupancy lazily
    (mtime order) and can enforce a budget immediately."""
    _fill(ArtifactCache(tmp_path), 5)
    tier = DiskTier(ArtifactCache(tmp_path).store_dir, max_bytes=8192)
    snapshot = tier.stats()
    assert snapshot.entries == 5 and snapshot.bytes > 8192
    assert tier.trim() > 0
    assert tier.stats().bytes <= 8192
