"""Unit and property tests for repeat statistics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AnalysisError
from repro.core.stats import (
    geometric_mean,
    improvement_factor,
    summarize_errors,
)


def test_stats_basic():
    stats = summarize_errors("m", [0.1, 0.2, 0.3])
    assert stats.mean_error == pytest.approx(0.2)
    assert stats.min_error == pytest.approx(0.1)
    assert stats.max_error == pytest.approx(0.3)
    assert stats.repeats == 3
    assert "±" in str(stats)


def test_empty_errors_rejected():
    with pytest.raises(AnalysisError, match="no error samples"):
        summarize_errors("m", [])


def test_negative_errors_rejected():
    with pytest.raises(AnalysisError):
        summarize_errors("m", [-0.1])


def test_improvement_factor():
    assert improvement_factor(1.0, 0.5) == pytest.approx(2.0)
    assert improvement_factor(0.5, 1.0) == pytest.approx(0.5)
    assert improvement_factor(1.0, 0.0) == float("inf")
    assert improvement_factor(0.0, 0.0) == 1.0
    with pytest.raises(AnalysisError):
        improvement_factor(-1.0, 1.0)


def test_geometric_mean():
    assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
    assert geometric_mean([3.0]) == pytest.approx(3.0)
    with pytest.raises(AnalysisError):
        geometric_mean([])
    with pytest.raises(AnalysisError):
        geometric_mean([0.0, 1.0])


@given(st.lists(st.floats(min_value=1e-6, max_value=1e6), min_size=1,
                max_size=20))
@settings(max_examples=100, deadline=None)
def test_stats_bounds(errors):
    stats = summarize_errors("m", errors)
    # Allow a few ulps of float slack: the mean of identical values can
    # round a hair past the max.
    slack = 1e-12 * max(1.0, stats.max_error)
    assert stats.min_error <= stats.mean_error + slack
    assert stats.mean_error <= stats.max_error + slack
    assert stats.std_error >= 0


@given(
    st.floats(min_value=1e-6, max_value=1e6),
    st.floats(min_value=1e-6, max_value=1e6),
)
@settings(max_examples=100, deadline=None)
def test_improvement_factor_antisymmetry(a, b):
    assert improvement_factor(a, b) == pytest.approx(
        1.0 / improvement_factor(b, a)
    )
