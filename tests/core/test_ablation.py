"""Unit tests for the ablation sweep API."""

import pytest

from repro import IVY_BRIDGE, Machine
from repro.core.ablation import sweep_period, sweep_uarch_parameter
from repro.workloads.registry import get_workload


@pytest.fixture(scope="module")
def small_trace():
    program = get_workload("g4box").build(scale=0.05)
    return Machine(IVY_BRIDGE).execute(program).trace


def test_uarch_sweep_structure(small_trace):
    sweep = sweep_uarch_parameter(
        small_trace, IVY_BRIDGE, "pmi_skid_cycles", (0, 16),
        method="classic", base_period=200, seeds=range(2),
    )
    assert sweep.parameter == "pmi_skid_cycles"
    assert sweep.method == "classic"
    assert sweep.values() == [0, 16]
    assert len(sweep.errors()) == 2
    assert all(e >= 0 for e in sweep.errors())


def test_uarch_sweep_zero_value_differs(small_trace):
    sweep = sweep_uarch_parameter(
        small_trace, IVY_BRIDGE, "pmi_skid_cycles", (0, 64),
        method="classic", base_period=200, seeds=range(2),
    )
    errors = sweep.errors()
    assert errors[0] != errors[1]


def test_period_sweep(small_trace):
    sweep = sweep_period(
        small_trace, IVY_BRIDGE, (101, 211), method="precise",
        seeds=range(2),
    )
    assert sweep.parameter == "base_period"
    assert sweep.values() == [101, 211]


def test_render_contains_values(small_trace):
    sweep = sweep_uarch_parameter(
        small_trace, IVY_BRIDGE, "lbr_depth", (4, 16),
        method="lbr", base_period=200, seeds=range(2),
    )
    text = sweep.render()
    assert "lbr_depth=" in text
    assert "error=" in text


def test_invalid_parameter_raises(small_trace):
    with pytest.raises(TypeError):
        sweep_uarch_parameter(
            small_trace, IVY_BRIDGE, "warp_factor", (1,),
            method="classic", base_period=200,
        )
