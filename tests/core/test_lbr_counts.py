"""Unit tests for full-LBR basic-block accounting."""

import numpy as np
import pytest

from repro import IVY_BRIDGE, Machine
from repro.errors import AnalysisError
from repro.core.lbr_counts import attribute_lbr, lbr_block_exec_counts
from repro.instrumentation import collect_reference
from repro.core.accuracy import profile_error
from repro.pmu.events import taken_branches_event
from repro.pmu.periods import PeriodPolicy
from repro.pmu.sampler import Sampler, SamplingConfig


def _collect(execution, base=11, collect_lbr=True):
    config = SamplingConfig(
        event=taken_branches_event(IVY_BRIDGE),
        period=PeriodPolicy(base=base),
        collect_lbr=collect_lbr,
    )
    return Sampler(execution).collect(config, np.random.default_rng(0))


def test_requires_lbr(branchy_execution):
    batch = _collect(branchy_execution, collect_lbr=False)
    with pytest.raises(AnalysisError, match="requires"):
        lbr_block_exec_counts(batch)


def test_counts_nonnegative(branchy_execution):
    batch = _collect(branchy_execution)
    counts = lbr_block_exec_counts(batch)
    assert (counts >= 0).all()
    assert counts.shape == (branchy_execution.program.num_blocks,)


def test_dense_lbr_sampling_near_exact(branchy_execution):
    """Sampling every 2nd taken branch with a 16-deep LBR covers nearly
    every gap, so execution counts converge to the truth."""
    batch = _collect(branchy_execution, base=2)
    profile = attribute_lbr(batch).normalized_to(
        branchy_execution.num_instructions
    )
    ref = collect_reference(branchy_execution.trace)
    error = profile_error(profile, ref).error
    assert error < 0.10


def test_estimates_scale_with_period(branchy_execution):
    """Per-sample scaling makes the raw estimate magnitude period-free."""
    sparse = attribute_lbr(_collect(branchy_execution, base=13))
    dense = attribute_lbr(_collect(branchy_execution, base=5))
    # Totals agree within sampling noise (same trace, same truth).
    ratio = sparse.total_estimate / dense.total_estimate
    assert 0.5 < ratio < 2.0


def test_reported_ip_is_ignored(branchy_execution):
    """The LBR method uses only stack contents: profiles from two batches
    with identical stacks but different reported IPs must agree."""
    batch = _collect(branchy_execution, base=7)
    profile_a = attribute_lbr(batch)
    # Perturb reported addresses (not the LBR ranges): same result.
    batch.reported_idx = np.minimum(
        batch.reported_idx + 1, branchy_execution.num_instructions - 1
    )
    profile_b = attribute_lbr(batch)
    assert np.allclose(
        profile_a.block_instr_estimates, profile_b.block_instr_estimates
    )


def test_metadata_includes_depth(branchy_execution):
    profile = attribute_lbr(_collect(branchy_execution))
    assert profile.metadata["lbr_depth"] == IVY_BRIDGE.lbr_depth
