"""Unit tests for function-level rank analysis."""

import numpy as np
import pytest

from repro.core.functions import (
    RankComparison,
    compare_top_functions,
    reference_top_functions,
)
from repro.core.profile import Profile
from repro.instrumentation import collect_reference


def _comparison(ref_order, est_order):
    return RankComparison(
        method="m",
        reference_order=tuple(ref_order),
        estimated_order=tuple(est_order),
    )


def test_exact_match():
    c = _comparison(["a", "b", "c"], ["a", "b", "c"])
    assert c.exact_match
    assert c.matching_prefix == 3
    assert c.overlap == 3
    assert c.kendall_tau() == pytest.approx(1.0)


def test_swapped_pair():
    c = _comparison(["a", "b", "c"], ["a", "c", "b"])
    assert not c.exact_match
    assert c.matching_prefix == 1
    assert c.overlap == 3
    assert -1.0 <= c.kendall_tau() < 1.0


def test_reversed_order_negative_tau():
    c = _comparison(["a", "b", "c", "d"], ["d", "c", "b", "a"])
    assert c.kendall_tau() == pytest.approx(-1.0)


def test_disjoint_sets():
    c = _comparison(["a", "b"], ["c", "d"])
    assert c.overlap == 0
    assert c.matching_prefix == 0


def test_reference_top_functions(call_trace):
    ref = collect_reference(call_trace)
    top = reference_top_functions(ref, n=2)
    names = [name for name, _ in top]
    assert "main" in names or "helper" in names
    counts = [count for _, count in top]
    assert counts == sorted(counts, reverse=True)


def test_compare_top_functions_exact_for_true_profile(call_trace):
    ref = collect_reference(call_trace)
    profile = Profile(
        program=call_trace.program,
        method="oracle",
        block_instr_estimates=ref.block_instr_counts.astype(np.float64),
        num_samples=0,
    )
    comparison = compare_top_functions(profile, ref, n=2)
    assert comparison.exact_match
