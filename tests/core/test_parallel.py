"""Tests for the parallel cell scheduler (serial/parallel equivalence)."""

import pickle

import pytest

from repro.obs import collecting
from repro.core.cache import ArtifactCache
from repro.core.experiment import CellSpec, ExperimentConfig, Harness
from repro.core.parallel import (
    evaluate_cells,
    group_by_workload,
    plan_cells,
)
from repro.core.tables import build_table1

CONFIG = ExperimentConfig(scale=0.01, repeats=1)
WORKLOADS = ("latency_biased", "callchain")
METHODS = ("classic", "precise")


def test_cellspec_is_picklable_and_hashable():
    spec = CellSpec("ivybridge", "mcf", "lbr", 500)
    clone = pickle.loads(pickle.dumps(spec))
    assert clone == spec
    assert hash(clone) == hash(spec)
    assert str(spec) == "ivybridge/mcf/lbr@500"


def test_cellspec_resolved_fills_period_only_once():
    spec = CellSpec("ivybridge", "mcf", "lbr")
    resolved = spec.resolved(500)
    assert resolved.period == 500
    assert resolved.resolved(500) is resolved


def test_plan_cells_matches_serial_loop_order():
    specs = plan_cells(CONFIG, WORKLOADS, METHODS)
    assert len(specs) == len(WORKLOADS) * len(CONFIG.machines) * len(METHODS)
    assert specs[0] == CellSpec("magnycours", "latency_biased", "classic",
                                2000)
    # Workload-major, then machine, then method — the serial loop order.
    assert [s.workload for s in specs[:6]] == ["latency_biased"] * 6
    assert all(s.period == 2000 for s in specs)


def test_group_by_workload_preserves_order():
    specs = plan_cells(CONFIG, WORKLOADS, METHODS)
    groups = group_by_workload(specs)
    assert [workload for workload, _ in groups] == list(WORKLOADS)
    assert sum(len(group) for _, group in groups) == len(specs)


def test_parallel_equals_serial_cells():
    specs = plan_cells(CONFIG, WORKLOADS, METHODS)
    serial = evaluate_cells(CONFIG, specs, jobs=1)
    with collecting() as col:
        parallel = evaluate_cells(CONFIG, specs, jobs=2)
    assert parallel == serial
    counters = col.metrics.counters()
    assert counters["parallel.cells_dispatched"] == len(specs)
    # Worker-side pipeline counters merged back into the parent registry.
    assert counters["samples.collected"] > 0
    assert counters["harness.cells_evaluated"] == len(specs)


def test_parallel_merges_worker_spans_into_parent():
    specs = plan_cells(CONFIG, ("latency_biased",), ("classic",))
    with collecting() as col:
        evaluate_cells(CONFIG, specs, jobs=2)
    names = col.span_names()
    # Pipeline spans recorded inside workers reach the parent collector.
    assert {"cell", "interpret", "sample", "attribute", "score"} <= names
    # Remapped seqs stay unique, and parent links stay within the record set.
    seqs = [record.seq for record in col.spans]
    assert len(seqs) == len(set(seqs))
    known = set(seqs)
    assert all(record.parent is None or record.parent in known
               for record in col.spans)


def test_parallel_table_build_is_bit_identical():
    serial = build_table1(Harness(CONFIG), methods=METHODS,
                          workloads=WORKLOADS, jobs=1)
    parallel = build_table1(Harness(CONFIG), methods=METHODS,
                            workloads=WORKLOADS, jobs=2)
    assert parallel.cells == serial.cells
    assert list(parallel.cells) == list(serial.cells)   # same key order too
    assert parallel.render() == serial.render()


def test_warm_cache_parallel_run_evaluates_zero_cells(tmp_path):
    """The acceptance scenario: 2 workloads × 2 methods, --jobs 2.

    The first build populates the cache; the second evaluates nothing
    (all cells come back as ``cache.hits``) yet is bit-identical.
    """
    cache = ArtifactCache(tmp_path)
    cold = build_table1(Harness(CONFIG, cache=cache), methods=METHODS,
                        workloads=WORKLOADS, jobs=2)
    with collecting() as col:
        warm = build_table1(Harness(CONFIG, cache=ArtifactCache(tmp_path)),
                            methods=METHODS, workloads=WORKLOADS, jobs=2)
    assert warm.cells == cold.cells
    counters = col.metrics.counters()
    assert counters.get("harness.cells_evaluated", 0) == 0
    evaluable = sum(1 for stats in cold.cells.values() if stats is not None)
    assert counters["cache.hits"] == evaluable


def test_blank_cells_survive_the_parallel_path():
    specs = [CellSpec("magnycours", "latency_biased", "lbr", 2000),
             CellSpec("westmere", "latency_biased", "lbr", 2000)]
    results = evaluate_cells(CONFIG, specs, jobs=2)
    assert results[specs[0]] is None        # no LBR on Magny-Cours
    assert results[specs[1]] is not None


def test_jobs_capped_by_group_count():
    # More jobs than workload groups must still work (pool sized down).
    specs = plan_cells(CONFIG, ("latency_biased",), ("classic",))
    results = evaluate_cells(CONFIG, specs, jobs=8)
    assert len(results) == len(specs)
