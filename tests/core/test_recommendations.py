"""Unit tests for the Section 6.3 advisor."""

import pytest

from repro import IVY_BRIDGE, MAGNY_COURS, Machine, WESTMERE
from repro.core.recommendations import recommend_method
from repro.pmu.periods import is_prime
from repro.workloads.registry import get_workload


@pytest.fixture(scope="module")
def fragmented_trace():
    return Machine(IVY_BRIDGE).execute(
        get_workload("test40").build(scale=0.02)
    ).trace


@pytest.fixture(scope="module")
def stall_trace():
    return Machine(IVY_BRIDGE).execute(
        get_workload("latency_biased").build(scale=0.02)
    ).trace


def test_lbr_recommended_when_available(fragmented_trace):
    execution = Machine(IVY_BRIDGE).attach(fragmented_trace)
    rec = recommend_method(execution)
    assert rec.method_key == "lbr"
    assert is_prime(rec.base_period)
    assert any("LBR" in reason for reason in rec.rationale)


def test_pdir_when_lbr_declined(fragmented_trace):
    execution = Machine(IVY_BRIDGE).attach(fragmented_trace)
    rec = recommend_method(execution, want_maximum_accuracy=False)
    assert rec.method_key == "pdir_fix"


def test_westmere_falls_back_to_precise_fix(fragmented_trace):
    execution = Machine(WESTMERE).attach(fragmented_trace)
    rec = recommend_method(execution, want_maximum_accuracy=False)
    assert rec.method_key == "precise_fix"


def test_amd_gets_prime_ibs(fragmented_trace):
    execution = Machine(MAGNY_COURS).attach(fragmented_trace)
    rec = recommend_method(execution)
    assert rec.method_key == "precise_prime"
    assert any("IBS" in reason for reason in rec.rationale)


def test_stall_bound_warning_on_westmere(stall_trace):
    execution = Machine(WESTMERE).attach(stall_trace)
    rec = recommend_method(execution, want_maximum_accuracy=False)
    assert rec.method_key == "precise_fix"
    assert any("latency bias" in reason for reason in rec.rationale)


def test_render_is_readable(fragmented_trace):
    execution = Machine(IVY_BRIDGE).attach(fragmented_trace)
    text = recommend_method(execution).render()
    assert "recommended method" in text
    assert "because:" in text


def test_period_always_prime(fragmented_trace):
    for uarch in (MAGNY_COURS, WESTMERE, IVY_BRIDGE):
        execution = Machine(uarch).attach(fragmented_trace)
        rec = recommend_method(execution, nominal_period=123_456)
        assert is_prime(rec.base_period)
