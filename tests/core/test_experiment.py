"""Unit tests for the experiment harness (caching, cell evaluation)."""

import numpy as np
import pytest

from repro.cpu.machine import Machine
from repro.cpu.uarch import ALL_UARCHES
from repro.core.experiment import (
    CellSpec,
    DEFAULT_MACHINES,
    ExperimentConfig,
    Harness,
    build_trace,
)
from repro.workloads.registry import get_workload


@pytest.fixture(scope="module")
def harness():
    return Harness(ExperimentConfig(scale=0.01, repeats=2))


def test_default_machines_order():
    assert DEFAULT_MACHINES == ("magnycours", "westmere", "ivybridge")


def test_trace_cached(harness):
    t1 = harness.trace("latency_biased")
    t2 = harness.trace("latency_biased")
    assert t1 is t2


def test_executions_share_trace(harness):
    a = harness.execution("westmere", "latency_biased")
    b = harness.execution("ivybridge", "latency_biased")
    assert a.trace is b.trace
    assert a.uarch.name == "westmere"


def test_reference_cached_and_consistent(harness):
    ref = harness.reference("latency_biased")
    assert ref is harness.reference("latency_biased")
    assert ref.net_instruction_count \
        == harness.trace("latency_biased").num_instructions


def test_cell_returns_stats(harness):
    stats = harness.cell("ivybridge", "latency_biased", "precise")
    assert stats is not None
    assert stats.repeats == 2
    # Cached: same object on second call.
    assert harness.cell("ivybridge", "latency_biased", "precise") is stats


def test_unavailable_cell_is_none(harness):
    assert harness.cell("magnycours", "latency_biased", "lbr") is None
    assert harness.cell("westmere", "latency_biased", "pdir_fix") is None


def test_period_for_uses_workload_default(harness):
    assert harness.period_for("latency_biased") == 2000
    assert harness.period_for("mcf") == 500


def test_config_seeds(harness):
    assert list(harness.config.seeds) == [100, 101]


def test_trace_is_uarch_neutral():
    """The trace builder involves no machine; every uarch observes the
    identical dynamic block sequence (DESIGN.md: machines differ only in
    timing and PMU features)."""
    neutral = build_trace("latency_biased", scale=0.01)
    program = get_workload("latency_biased").build(scale=0.01)
    for uarch in ALL_UARCHES:
        executed = Machine(uarch).execute(program).trace
        np.testing.assert_array_equal(executed.block_seq, neutral.block_seq)


def test_harness_trace_independent_of_machine_order():
    forward = Harness(ExperimentConfig(scale=0.01, machines=DEFAULT_MACHINES))
    reverse = Harness(ExperimentConfig(
        scale=0.01, machines=tuple(reversed(DEFAULT_MACHINES))
    ))
    np.testing.assert_array_equal(
        forward.trace("latency_biased").block_seq,
        reverse.trace("latency_biased").block_seq,
    )


def test_evaluate_cell_accepts_specs_and_matches_cell(harness):
    spec = CellSpec("ivybridge", "latency_biased", "precise")
    stats = harness.evaluate_cell(spec)
    assert stats is harness.cell("ivybridge", "latency_biased", "precise")
    # The resolved-period spec is the canonical in-process cache key.
    assert CellSpec("ivybridge", "latency_biased", "precise", 2000) \
        in harness._cells
