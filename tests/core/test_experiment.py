"""Unit tests for the experiment harness (caching, cell evaluation)."""

import pytest

from repro.core.experiment import DEFAULT_MACHINES, ExperimentConfig, Harness


@pytest.fixture(scope="module")
def harness():
    return Harness(ExperimentConfig(scale=0.01, repeats=2))


def test_default_machines_order():
    assert DEFAULT_MACHINES == ("magnycours", "westmere", "ivybridge")


def test_trace_cached(harness):
    t1 = harness.trace("latency_biased")
    t2 = harness.trace("latency_biased")
    assert t1 is t2


def test_executions_share_trace(harness):
    a = harness.execution("westmere", "latency_biased")
    b = harness.execution("ivybridge", "latency_biased")
    assert a.trace is b.trace
    assert a.uarch.name == "westmere"


def test_reference_cached_and_consistent(harness):
    ref = harness.reference("latency_biased")
    assert ref is harness.reference("latency_biased")
    assert ref.net_instruction_count \
        == harness.trace("latency_biased").num_instructions


def test_cell_returns_stats(harness):
    stats = harness.cell("ivybridge", "latency_biased", "precise")
    assert stats is not None
    assert stats.repeats == 2
    # Cached: same object on second call.
    assert harness.cell("ivybridge", "latency_biased", "precise") is stats


def test_unavailable_cell_is_none(harness):
    assert harness.cell("magnycours", "latency_biased", "lbr") is None
    assert harness.cell("westmere", "latency_biased", "pdir_fix") is None


def test_period_for_uses_workload_default(harness):
    assert harness.period_for("latency_biased") == 2000
    assert harness.period_for("mcf") == 500


def test_config_seeds(harness):
    assert list(harness.config.seeds) == [100, 101]
