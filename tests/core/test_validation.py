"""Unit tests for tool-side batch validation."""

import numpy as np
import pytest

from repro import IVY_BRIDGE, Machine
from repro.errors import AnalysisError
from repro.core.validation import assert_healthy, diagnose_batch
from repro.pmu.events import Precision, instructions_event
from repro.pmu.periods import PeriodPolicy, Randomization
from repro.pmu.sampler import Sampler, SamplingConfig
from repro.workloads.registry import get_workload


@pytest.fixture(scope="module")
def callchain_execution():
    program = get_workload("callchain").build(scale=0.15)
    return Machine(IVY_BRIDGE).execute(program)


def _collect(execution, base, randomization=Randomization.NONE):
    config = SamplingConfig(
        event=instructions_event(IVY_BRIDGE, Precision.PEBS),
        period=PeriodPolicy(base=base, randomization=randomization),
    )
    return Sampler(execution).collect(config, np.random.default_rng(0))


def test_resonant_batch_flagged(callchain_execution):
    # Round period 400 resonates with the 200-instruction iteration.
    batch = _collect(callchain_execution, 400)
    diagnostics = diagnose_batch(batch)
    assert diagnostics.resonance_suspected
    assert any("synchronization" in w for w in diagnostics.warnings())
    with pytest.raises(AnalysisError, match="synchronization"):
        assert_healthy(batch)


def test_randomized_batch_healthy(callchain_execution):
    batch = _collect(callchain_execution, 400,
                     randomization=Randomization.SOFTWARE)
    diagnostics = diagnose_batch(batch)
    assert not diagnostics.resonance_suspected
    assert_healthy(batch)  # should not raise


def test_prime_period_healthy(callchain_execution):
    batch = _collect(callchain_execution, 401)
    assert not diagnose_batch(batch).resonance_suspected


def test_too_few_samples_warned(callchain_execution):
    total = callchain_execution.num_instructions
    batch = _collect(callchain_execution, max(32, total // 20))
    warnings = diagnose_batch(batch).warnings()
    assert any("statistical noise" in w for w in warnings)


def test_empty_batch_diagnostics(callchain_execution):
    batch = _collect(callchain_execution, 401)
    # Empty out the batch to exercise the degenerate path.
    batch.reported_idx = batch.reported_idx[:0]
    batch.trigger_idx = batch.trigger_idx[:0]
    batch.period_weights = batch.period_weights[:0]
    diagnostics = diagnose_batch(batch)
    assert diagnostics.num_samples == 0
    assert diagnostics.block_coverage == 0.0


def test_coverage_in_unit_interval(callchain_execution):
    batch = _collect(callchain_execution, 101)
    diagnostics = diagnose_batch(batch)
    assert 0.0 < diagnostics.block_coverage <= 1.0
    assert 0.0 < diagnostics.address_diversity <= 1.0
