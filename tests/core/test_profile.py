"""Unit tests for the Profile container."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.core.profile import Profile


def _profile(program, values, method="m"):
    return Profile(
        program=program,
        method=method,
        block_instr_estimates=np.asarray(values, dtype=np.float64),
        num_samples=10,
    )


def test_shape_validated(loop_program):
    with pytest.raises(AnalysisError, match="blocks"):
        _profile(loop_program, [1.0])


def test_negative_estimates_rejected(loop_program):
    values = [0.0] * loop_program.num_blocks
    values[0] = -1.0
    with pytest.raises(AnalysisError, match="negative"):
        _profile(loop_program, values)


def test_normalization(loop_program):
    values = [1.0] * loop_program.num_blocks
    profile = _profile(loop_program, values)
    scaled = profile.normalized_to(1000)
    assert scaled.total_estimate == pytest.approx(1000)
    assert scaled.metadata["normalized"] is True
    # Relative shares preserved.
    assert np.allclose(
        scaled.block_instr_estimates,
        1000 / loop_program.num_blocks,
    )


def test_normalize_empty_rejected(loop_program):
    profile = _profile(loop_program, [0.0] * loop_program.num_blocks)
    with pytest.raises(AnalysisError, match="empty"):
        profile.normalized_to(100)


def test_function_aggregation(call_program):
    values = np.ones(call_program.num_blocks)
    profile = _profile(call_program, values)
    per_function = profile.function_instr_estimates()
    assert per_function.sum() == pytest.approx(call_program.num_blocks)
    assert per_function.size == len(call_program.functions)


def test_top_functions_ordering(call_program):
    values = np.zeros(call_program.num_blocks)
    helper_entry = call_program.function("helper").entry.index
    values[helper_entry] = 100.0
    values[0] = 1.0
    profile = _profile(call_program, values)
    top = profile.top_functions(2)
    assert top[0][0] == "helper"
    assert top[0][1] == pytest.approx(100.0)
