"""Distributed coordinator tests: sharding, retry/requeue, byte-identity.

Most tests drive the coordinator through an in-process :class:`FakeFleet`
(an ``HttpFn`` that evaluates requests locally), so worker death, busy
signals, and version skew are deterministic.  One end-to-end test runs a
campaign against two live ``ProfilingServer`` daemons over real sockets.
"""

from __future__ import annotations

import functools
import json

import pytest

from repro._version import __version__
from repro.api import EvaluateRequest, evaluate_request
from repro.errors import SweepError
from repro.obs import collecting
from repro.serve.protocol import split_transport
from repro.sweep import (
    FleetConfig,
    probe_workers,
    run_campaign,
    run_campaign_dir,
    run_campaign_distributed,
    write_reports,
)

from tests.sweep.conftest import make_fidelity_spec, make_spec
from tests.sweep.test_engine import truncate_journal

REPORT_FILES = ("report.md", "summary.csv", "period_sensitivity.csv",
                "seed_convergence.csv")

#: Tight timings so fault-path tests finish in tier-1 time.
FAST_FLEET = FleetConfig(backoff_base_s=0.01, backoff_cap_s=0.05,
                         quarantine_after=2, quarantine_s=30.0,
                         max_attempts=10)


class FakeFleet:
    """N in-process serve workers behind the coordinator's ``HttpFn`` seam.

    ``POST /v1/evaluate`` evaluates through :func:`repro.api.
    evaluate_request` — exactly what a real daemon's worker does — so the
    byte-identity guarantees hold without sockets.  Per-worker behavior
    hooks inject faults: return an ``(status, headers, body)`` override,
    raise ``OSError`` to simulate a dead worker, or return ``None`` to
    fall through to normal handling.
    """

    def __init__(self, n: int = 2, version: str = __version__):
        self.n = n
        self.version = version
        self.behaviors = {}
        self.evaluated = [0] * n

    def url(self, index: int) -> str:
        return f"http://w{index}"

    def urls(self) -> list[str]:
        return [self.url(index) for index in range(self.n)]

    def set_behavior(self, index: int, hook) -> None:
        self.behaviors[index] = hook

    def http(self, method, url, body, headers, timeout_s):
        rest = url.split("//w", 1)[1]
        index, _, path = rest.partition("/")
        index, path = int(index), "/" + path
        hook = self.behaviors.get(index)
        if hook is not None:
            override = hook(method, path)
            if override is not None:
                return override
        if method == "GET" and path == "/healthz":
            health = {"status": "ok", "version": self.version}
            return 200, {}, json.dumps(health).encode("utf-8")
        if method == "POST" and path == "/v1/evaluate":
            payload, _ = split_transport(json.loads(body))
            result = evaluate_request(EvaluateRequest.from_dict(payload))
            self.evaluated[index] += 1
            return 200, {}, result.to_json().encode("utf-8")
        return 404, {}, b'{"error": "unknown route"}'


def dies_after(successes: int):
    """A behavior hook: allow ``successes`` evaluates, then refuse all
    connections (the in-process twin of kill -9)."""
    budget = {"left": successes}

    def hook(method, path):
        if method == "POST":
            if budget["left"] <= 0:
                raise ConnectionRefusedError("worker killed")
            budget["left"] -= 1
        return None

    return hook


@pytest.fixture(scope="module")
def local_baseline(tmp_path_factory):
    """The single-process ground truth every distributed run must match."""
    spec = make_spec()
    out = tmp_path_factory.mktemp("local-baseline")
    result = run_campaign(spec, out / "journal.jsonl")
    write_reports(result, out)
    return spec, result, out


def test_distributed_run_matches_local_byte_for_byte(local_baseline,
                                                     tmp_path):
    spec, baseline, baseline_dir = local_baseline
    fleet = FakeFleet(n=2)
    result, report = run_campaign_distributed(
        spec, tmp_path / "journal.jsonl", fleet.urls(), http=fleet.http)

    assert result.to_document() == baseline.to_document()
    write_reports(result, tmp_path)
    for name in REPORT_FILES:
        assert (tmp_path / name).read_bytes() == \
            (baseline_dir / name).read_bytes()

    # Work was genuinely sharded: every worker evaluated cells, the
    # dispatch tally covers the whole campaign, nothing was retried.
    assert all(done > 0 for done in fleet.evaluated)
    assert sum(fleet.evaluated) == spec.num_points
    assert report.cells_dispatched == spec.num_points
    assert report.cells_retried == 0
    assert sum(w.cells_ok for w in report.workers) == spec.num_points


def test_killed_worker_requeues_to_survivor(local_baseline, tmp_path):
    spec, baseline, _ = local_baseline
    fleet = FakeFleet(n=2)
    fleet.set_behavior(1, dies_after(1))

    with collecting() as collector:
        result, report = run_campaign_distributed(
            spec, tmp_path / "journal.jsonl", fleet.urls(),
            fleet=FAST_FLEET, http=fleet.http)

    # The campaign survives the death and the artifacts are unchanged.
    assert result.to_document() == baseline.to_document()

    counters = collector.metrics.counters()
    assert counters["dist.cells_retried"] >= 1
    assert counters["dist.cells_requeued"] >= 1
    assert counters["sweep.cells_done"] == spec.num_points

    dead, survivor = report.workers[1], report.workers[0]
    assert dead.faults >= 1
    assert dead.quarantines >= 1
    assert dead.cells_ok == 1
    assert survivor.cells_ok == spec.num_points - 1


def test_distributed_resume_skips_journaled_cells(local_baseline, tmp_path):
    spec, baseline, _ = local_baseline
    fleet = FakeFleet(n=2)
    journal = tmp_path / "journal.jsonl"
    run_campaign_distributed(spec, journal, fleet.urls(), http=fleet.http)
    truncate_journal(journal, keep_points=3, torn_bytes=10)

    with collecting() as collector:
        resumed, report = run_campaign_distributed(
            spec, journal, fleet.urls(), resume=True, http=fleet.http)
    counters = collector.metrics.counters()
    assert counters["sweep.cells_resumed"] == 3
    assert report.cells_dispatched == spec.num_points - 3
    assert resumed.to_document() == baseline.to_document()


def test_distributed_fidelity_matches_local_byte_for_byte(tmp_path):
    """Fidelity scores travel the wire and land byte-identical to a local
    run — journal replay on resume included."""
    spec = make_fidelity_spec()
    local_dir = tmp_path / "local"
    local = run_campaign(spec, local_dir / "journal.jsonl")
    write_reports(local, local_dir)

    fleet = FakeFleet(n=2)
    journal = tmp_path / "dist" / "journal.jsonl"
    result, _ = run_campaign_distributed(spec, journal, fleet.urls(),
                                         http=fleet.http)
    assert result.has_fidelity
    assert result.to_document() == local.to_document()
    write_reports(result, tmp_path / "dist")
    for name in (*REPORT_FILES, "fidelity.csv"):
        assert (tmp_path / "dist" / name).read_bytes() == \
            (local_dir / name).read_bytes(), name

    # Resume with a truncated journal: the replayed point keeps its
    # fidelity without ever leaving the coordinator.
    truncate_journal(journal, keep_points=1)
    resumed, report = run_campaign_distributed(
        spec, journal, fleet.urls(), resume=True, http=fleet.http)
    assert report.cells_dispatched == spec.num_points - 1
    assert resumed.to_document() == local.to_document()


def test_existing_journal_without_resume_is_refused(tmp_path):
    journal = tmp_path / "journal.jsonl"
    journal.write_text("{}\n")
    with pytest.raises(SweepError, match="--resume"):
        run_campaign_distributed(make_spec(), journal,
                                 ["http://w0"], http=FakeFleet(1).http)


def test_version_skewed_fleet_is_refused():
    fleet = FakeFleet(n=2)
    health = json.dumps({"status": "ok", "version": "0.0.0"}).encode("utf-8")
    fleet.set_behavior(1, lambda method, path: (200, {}, health)
                       if path == "/healthz" else None)
    with pytest.raises(SweepError, match="mixed-version"):
        probe_workers(fleet.urls(), http=fleet.http)


def test_unreachable_workers_tolerated_but_not_all():
    fleet = FakeFleet(n=2)

    def down(method, path):
        raise ConnectionRefusedError("down")

    fleet.set_behavior(1, down)
    workers = probe_workers(fleet.urls(), http=fleet.http)
    assert workers[0].faults == 0 and workers[0].health is not None
    assert workers[1].faults == 1 and workers[1].health is None

    fleet.set_behavior(0, down)
    with pytest.raises(SweepError, match="no reachable workers"):
        probe_workers(fleet.urls(), http=fleet.http)


def test_empty_and_duplicate_worker_urls_refused():
    with pytest.raises(SweepError, match="no worker URLs"):
        probe_workers([])
    with pytest.raises(SweepError, match="duplicate"):
        probe_workers(["http://w0", "http://w0/"],
                      http=FakeFleet(1).http)


def test_fatal_rejection_fails_the_campaign(tmp_path):
    fleet = FakeFleet(n=1)
    fleet.set_behavior(0, lambda method, path:
                       (400, {}, b'{"error": "no such workload"}')
                       if path == "/v1/evaluate" else None)
    spec = make_spec(methods=("classic",), periods=(500,), seed_counts=(1,))
    with pytest.raises(SweepError, match="rejected"):
        run_campaign_distributed(spec, tmp_path / "journal.jsonl",
                                 fleet.urls(), http=fleet.http)


def test_busy_worker_backs_off_without_a_health_fault(tmp_path):
    fleet = FakeFleet(n=1)
    shed = {"left": 1}

    def busy_once(method, path):
        if path == "/v1/evaluate" and shed["left"] > 0:
            shed["left"] -= 1
            return 429, {"Retry-After": "0.01"}, b'{"error": "queue full"}'
        return None

    fleet.set_behavior(0, busy_once)
    spec = make_spec(methods=("classic",), periods=(500,), seed_counts=(1,))
    with collecting() as collector:
        result, report = run_campaign_distributed(
            spec, tmp_path / "journal.jsonl", fleet.urls(),
            fleet=FAST_FLEET, http=fleet.http)
    counters = collector.metrics.counters()
    assert counters["dist.cells_requeued"] == 1
    assert "dist.cells_retried" not in counters    # busy is not a fault
    assert report.workers[0].faults == 0
    assert result.num_points == 1 and result.num_blank == 0


def test_dead_fleet_terminates_after_max_attempts(tmp_path):
    fleet = FakeFleet(n=1)
    fleet.set_behavior(0, lambda method, path:
                       (500, {}, b'{"error": "boom"}')
                       if path == "/v1/evaluate" else None)
    spec = make_spec(methods=("classic",), periods=(500,), seed_counts=(1,))
    config = FleetConfig(max_attempts=2, backoff_base_s=0.01,
                         backoff_cap_s=0.02, quarantine_after=100)
    with pytest.raises(SweepError, match="after 2 attempts"):
        run_campaign_distributed(spec, tmp_path / "journal.jsonl",
                                 fleet.urls(), fleet=config, http=fleet.http)


def test_blank_cells_journal_and_count_like_local(tmp_path):
    spec = make_spec(machines=("magnycours",), methods=("classic", "lbr"),
                     periods=(500,), seed_counts=(1,))
    fleet = FakeFleet(n=2)
    with collecting() as collector:
        result, _ = run_campaign_distributed(
            spec, tmp_path / "journal.jsonl", fleet.urls(), http=fleet.http)
    assert result.num_blank == 1
    assert collector.metrics.counters()["sweep.cells_skipped"] == 1


def test_run_campaign_dir_merges_fleet_into_manifest(tmp_path, monkeypatch):
    fleet = FakeFleet(n=2)
    monkeypatch.setattr(
        "repro.sweep.run_campaign_distributed",
        functools.partial(run_campaign_distributed, http=fleet.http))
    spec = make_spec(methods=("classic",), periods=(500,), seed_counts=(1,))
    run_campaign_dir(spec, tmp_path, workers=fleet.urls())

    manifest = json.loads((tmp_path / "campaign.meta.json").read_text())
    assert manifest["config"]["workers"] == fleet.urls()
    assert manifest["fleet"]["coordinator_version"] == __version__
    assert manifest["fleet"]["cells_dispatched"] == 1
    assert [w["url"] for w in manifest["fleet"]["workers"]] == fleet.urls()
    assert sum(w["cells_ok"] for w in manifest["fleet"]["workers"]) == 1


def test_distributed_campaign_against_live_daemons(tmp_path):
    """End to end over real sockets: two daemons, default transport."""
    from repro.serve import ProfilingServer, ServerConfig

    spec = make_spec(methods=("classic",), periods=(500, 1000),
                     seed_counts=(1,))
    local_dir = tmp_path / "local"
    local = run_campaign_dir(spec, local_dir)
    write_reports(local, local_dir)

    servers = [ProfilingServer(ServerConfig(port=0, workers=1, queue_size=8))
               for _ in range(2)]
    for server in servers:
        server.start()
    try:
        fleet_dir = tmp_path / "fleet"
        run_campaign_dir(spec, fleet_dir,
                         workers=[server.url for server in servers])
    finally:
        for server in servers:
            server.drain(timeout=30.0)
            server.stop()

    assert (fleet_dir / "campaign.json").read_bytes() == \
        (local_dir / "campaign.json").read_bytes()
    for name in REPORT_FILES:
        assert (fleet_dir / name).read_bytes() == \
            (local_dir / name).read_bytes()
    manifest = json.loads((fleet_dir / "campaign.meta.json").read_text())
    assert len(manifest["fleet"]["workers"]) == 2
