"""Unit tests for bootstrap aggregation and curves."""

import numpy as np
import pytest

from repro.sweep import (
    bootstrap_ci,
    period_sensitivity,
    seed_convergence,
    summarize,
)


class TestBootstrapCI:
    def test_deterministic_for_fixed_inputs(self):
        values = [0.1, 0.4, 0.2, 0.3, 0.25]
        assert bootstrap_ci(values) == bootstrap_ci(values)

    def test_interval_contains_mean(self):
        rng = np.random.default_rng(3)
        values = rng.uniform(0, 1, size=40).tolist()
        ci = bootstrap_ci(values)
        assert ci.lo <= ci.mean <= ci.hi
        assert ci.mean == pytest.approx(float(np.mean(values)))
        assert ci.samples == 40

    def test_single_value_is_degenerate(self):
        ci = bootstrap_ci([0.37])
        assert (ci.mean, ci.lo, ci.hi) == (0.37, 0.37, 0.37)
        assert ci.half_width == 0.0

    def test_interval_narrows_with_more_samples(self):
        rng = np.random.default_rng(11)
        small = bootstrap_ci(rng.normal(0.5, 0.1, size=5).tolist())
        large = bootstrap_ci(rng.normal(0.5, 0.1, size=500).tolist())
        assert large.half_width < small.half_width

    def test_empty_values_raise(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])


class TestCampaignAggregates:
    def test_summarize_covers_every_method_period_pair(self, tiny_result):
        rows = summarize(tiny_result)
        spec = tiny_result.spec
        assert {(r.method, r.period) for r in rows} == {
            (m, p) for m in spec.methods for p in spec.periods
        }
        # Rows follow spec method order, then ascending period.
        assert [(r.method, r.period) for r in rows] == [
            (m, p) for m in spec.methods for p in sorted(spec.periods)
        ]
        for row in rows:
            assert row.cells == 1                  # one workload, one machine
            assert row.ci.samples == spec.max_repeats
            assert 0.0 <= row.ci.lo <= row.ci.mean <= row.ci.hi

    def test_period_sensitivity_axes(self, tiny_result):
        curves = period_sensitivity(tiny_result)
        assert set(curves) == set(tiny_result.spec.methods)
        for pts in curves.values():
            assert [pt.x for pt in pts] == sorted(tiny_result.spec.periods)

    def test_seed_convergence_axes(self, tiny_result):
        curves = seed_convergence(tiny_result)
        assert set(curves) == set(tiny_result.spec.methods)
        for pts in curves.values():
            assert [pt.x for pt in pts] == sorted(
                tiny_result.spec.seed_counts
            )
            # Deeper seed pools can only use more samples.
            assert pts[-1].ci.samples > pts[0].ci.samples
