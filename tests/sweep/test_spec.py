"""Unit tests for campaign specifications and their expansion."""

import pytest

from repro.errors import SweepError
from repro.sweep import CampaignSpec, log_spaced_periods

from tests.sweep.conftest import make_spec


class TestLogSpacedPeriods:
    def test_endpoints_are_exact(self):
        periods = log_spaced_periods(500, 4000, 7)
        assert periods[0] == 500
        assert periods[-1] == 4000
        assert len(periods) == 7

    def test_values_are_geometric_and_increasing(self):
        periods = log_spaced_periods(100, 100_000, 4)
        assert list(periods) == sorted(periods)
        ratios = [periods[i + 1] / periods[i] for i in range(len(periods) - 1)]
        assert max(ratios) / min(ratios) < 1.01

    def test_tight_range_deduplicates(self):
        periods = log_spaced_periods(10, 12, 9)
        assert len(periods) == len(set(periods))
        assert periods[0] == 10 and periods[-1] == 12

    def test_single_count(self):
        assert log_spaced_periods(500, 500, 1) == (500,)
        assert log_spaced_periods(500, 900, 1) == (500, 900)

    @pytest.mark.parametrize("args", [(1, 10, 3), (100, 50, 3), (10, 20, 0)])
    def test_invalid_ranges_raise(self, args):
        with pytest.raises(SweepError):
            log_spaced_periods(*args)


class TestCampaignSpec:
    def test_expand_order_is_workload_major(self):
        spec = make_spec(workloads=("callchain", "latency_biased"))
        points = spec.expand()
        assert len(points) == spec.num_points
        # All of the first workload's points precede the second's.
        workloads = [p.cell.workload for p in points]
        switch = workloads.index("latency_biased")
        assert set(workloads[:switch]) == {"callchain"}
        assert set(workloads[switch:]) == {"latency_biased"}
        # Within a workload: period-major, then method, then repeats.
        assert [
            (p.cell.period, p.cell.method, p.repeats) for p in points[:8]
        ] == [
            (500, "classic", 1), (500, "classic", 2),
            (500, "precise", 1), (500, "precise", 2),
            (1000, "classic", 1), (1000, "classic", 2),
            (1000, "precise", 1), (1000, "precise", 2),
        ]

    def test_point_ids_are_unique(self):
        points = make_spec().expand()
        assert len({p.point_id for p in points}) == len(points)

    def test_periods_none_uses_workload_default(self):
        from repro.workloads.registry import get_workload

        spec = make_spec(periods=None)
        default = get_workload("callchain").default_period
        assert spec.periods_for("callchain") == (default,)
        assert all(p.cell.period == default for p in spec.expand())

    def test_dict_round_trip(self):
        spec = make_spec()
        clone = CampaignSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.digest() == spec.digest()

    def test_json_round_trip_via_file(self, tmp_path):
        spec = make_spec()
        path = spec.save(tmp_path / "spec.json")
        assert CampaignSpec.load(path) == spec

    def test_from_dict_log_range_period_axis(self):
        document = make_spec().to_dict()
        document["periods"] = {
            "log_range": {"start": 500, "stop": 4000, "count": 4}
        }
        spec = CampaignSpec.from_dict(document)
        assert spec.periods == log_spaced_periods(500, 4000, 4)

    def test_from_dict_bad_period_dict_raises(self):
        document = make_spec().to_dict()
        document["periods"] = {"linear": [1, 2]}
        with pytest.raises(SweepError, match="log_range"):
            CampaignSpec.from_dict(document)

    def test_from_dict_unknown_version_raises(self):
        document = make_spec().to_dict()
        document["version"] = 99
        with pytest.raises(SweepError, match="version"):
            CampaignSpec.from_dict(document)

    def test_digest_changes_with_any_axis(self):
        base = make_spec()
        assert base.digest() == make_spec().digest()
        for changes in (
            {"name": "other"},
            {"periods": (500, 2000)},
            {"seed_counts": (3,)},
            {"seed_base": 7},
            {"scale": 0.1},
            {"methods": ("classic",)},
        ):
            assert base.with_(**changes).digest() != base.digest()

    def test_validation_rejects_bad_axes(self):
        with pytest.raises(SweepError, match="unknown methods"):
            make_spec(methods=("classic", "nope"))
        with pytest.raises(SweepError, match="empty"):
            make_spec(workloads=())
        with pytest.raises(SweepError, match="periods"):
            make_spec(periods=(1,))
        with pytest.raises(SweepError, match="seed_counts"):
            make_spec(seed_counts=(0,))
        with pytest.raises(SweepError, match="scale"):
            make_spec(scale=0.0)

    def test_validation_rejects_unknown_workload_and_machine(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            make_spec(workloads=("nope",))
        with pytest.raises(ReproError):
            make_spec(machines=("i486",))

    def test_lists_normalize_to_tuples(self):
        spec = make_spec(workloads=["callchain"], periods=[500],
                         seed_counts=[2])
        assert spec.workloads == ("callchain",)
        assert spec.periods == (500,)
        assert spec.seed_counts == (2,)
