"""End-to-end tests for the campaign engine: run, interrupt, resume."""

import json

import pytest

from repro.errors import SweepError
from repro.obs import collecting
from repro.sweep import (
    CampaignResult,
    load_campaign,
    result_from_journal,
    run_campaign,
    run_campaign_dir,
    write_reports,
)

from tests.sweep.conftest import make_spec


def truncate_journal(path, keep_points, torn_bytes=0):
    """Cut a completed journal back to header + ``keep_points`` records.

    ``torn_bytes`` re-appends that many bytes of the next record, simulating
    a crash mid-append.
    """
    lines = path.read_text().splitlines(keepends=True)
    kept = "".join(lines[: 1 + keep_points])
    if torn_bytes:
        kept += lines[1 + keep_points][:torn_bytes]
    path.write_text(kept)


def test_fresh_run_completes_in_expansion_order(tiny_spec, tiny_result):
    assert list(tiny_result.cells) == tiny_spec.expand()
    assert tiny_result.num_points == tiny_spec.num_points
    assert tiny_result.num_blank == 0
    assert all(stats is not None for stats in tiny_result.cells.values())


def test_existing_journal_without_resume_is_refused(tiny_spec, tmp_path):
    journal = tmp_path / "journal.jsonl"
    journal.write_text("{}\n")
    with pytest.raises(SweepError, match="--resume"):
        run_campaign(tiny_spec, journal)


def test_journal_spec_digest_mismatch_is_refused(tiny_spec, tmp_path):
    journal = tmp_path / "journal.jsonl"
    run_campaign(tiny_spec.with_(seed_counts=(1,)), journal)
    with pytest.raises(SweepError, match="different campaign"):
        run_campaign(tiny_spec, journal, resume=True)


def test_interrupted_campaign_resumes_without_reevaluation(tmp_path):
    spec = make_spec()
    total = spec.num_points

    baseline_dir = tmp_path / "baseline"
    baseline = run_campaign(spec, baseline_dir / "journal.jsonl")
    write_reports(baseline, baseline_dir)

    # "Interrupt" a second run: keep 3 journaled cells plus a torn record.
    resumed_dir = tmp_path / "resumed"
    journal = resumed_dir / "journal.jsonl"
    run_campaign(spec, journal)
    truncate_journal(journal, keep_points=3, torn_bytes=20)

    with collecting() as collector:
        resumed = run_campaign(spec, journal, resume=True)
    counters = collector.metrics.counters()
    assert counters["sweep.cells_resumed"] == 3
    assert counters["sweep.cells_done"] == total - 3

    # The acceptance criterion: byte-identical artifacts either way.
    assert resumed.to_document() == baseline.to_document()
    write_reports(resumed, resumed_dir)
    for name in ("report.md", "summary.csv", "period_sensitivity.csv",
                 "seed_convergence.csv"):
        assert (resumed_dir / name).read_bytes() == \
            (baseline_dir / name).read_bytes()

    # Resuming a complete campaign evaluates nothing at all.
    with collecting() as collector:
        run_campaign(spec, journal, resume=True)
    counters = collector.metrics.counters()
    assert counters["sweep.cells_resumed"] == total
    assert "sweep.cells_done" not in counters


def test_parallel_campaign_matches_serial(tmp_path):
    # precise_prime_rand draws its randomized periods from the RNG, so this
    # also guards the per-cell seed threading (no process-global state).
    spec = make_spec(methods=("classic", "precise_prime_rand"),
                     periods=(500,), seed_counts=(2,))
    serial = run_campaign(spec, tmp_path / "serial.jsonl")
    parallel = run_campaign(spec, tmp_path / "parallel.jsonl", jobs=2)
    assert parallel.to_document() == serial.to_document()


def test_blank_cells_are_journaled_and_counted(tmp_path):
    # LBR methods are Intel-only: blank on magnycours, never re-touched.
    spec = make_spec(machines=("magnycours",), methods=("classic", "lbr"),
                     periods=(500,), seed_counts=(1,))
    journal = tmp_path / "journal.jsonl"
    with collecting() as collector:
        result = run_campaign(spec, journal)
    assert result.num_blank == 1
    assert collector.metrics.counters()["sweep.cells_skipped"] == 1

    lines = [json.loads(line) for line in
             journal.read_text().splitlines()][1:]
    assert sum(1 for e in lines if e["errors"] is None) == 1

    with collecting() as collector:
        resumed = run_campaign(spec, journal, resume=True)
    counters = collector.metrics.counters()
    assert counters["sweep.cells_resumed"] == spec.num_points
    assert "sweep.cells_done" not in counters
    assert resumed.to_document() == result.to_document()


def test_campaign_span_is_emitted(tiny_spec, tmp_path):
    with collecting() as collector:
        run_campaign(tiny_spec, tmp_path / "journal.jsonl")
    assert "campaign" in collector.span_names()


def test_on_point_progress_callback(tiny_spec, tmp_path):
    seen = []
    run_campaign(tiny_spec, tmp_path / "journal.jsonl",
                 on_point=lambda p, s, done, total: seen.append((done, total)))
    total = tiny_spec.num_points
    assert [done for done, _ in seen] == list(range(1, total + 1))
    assert all(t == total for _, t in seen)


def test_result_from_journal_requires_completion(tiny_spec, tmp_path):
    journal = tmp_path / "journal.jsonl"
    run_campaign(tiny_spec, journal)
    truncate_journal(journal, keep_points=2)
    with pytest.raises(SweepError, match="incomplete"):
        result_from_journal(tiny_spec, journal)


def test_result_from_journal_round_trips(tiny_spec, tmp_path):
    journal = tmp_path / "journal.jsonl"
    result = run_campaign(tiny_spec, journal)
    rebuilt = result_from_journal(tiny_spec, journal)
    assert rebuilt.to_document() == result.to_document()


def test_document_save_load_round_trip(tiny_result, tmp_path):
    path = tiny_result.save(tmp_path / "campaign.json")
    loaded = CampaignResult.load(path)
    assert loaded.spec == tiny_result.spec
    assert loaded.to_document() == tiny_result.to_document()


def test_document_format_mismatch_raises(tiny_result, tmp_path):
    document = tiny_result.to_document()
    document["format"] = 99
    with pytest.raises(SweepError, match="format"):
        CampaignResult.from_document(document)


def test_fidelity_campaign_resume_replays_without_reevaluation(
        fidelity_campaign, tmp_path):
    """Journal truncation + --resume replays FidelityStats from the journal
    and regenerates byte-identical artifacts — the acceptance criterion."""
    spec, baseline, _ = fidelity_campaign
    baseline_dir = tmp_path / "baseline"
    write_reports(baseline, baseline_dir)
    baseline.save(baseline_dir / "campaign.json")

    resumed_dir = tmp_path / "resumed"
    journal = resumed_dir / "journal.jsonl"
    run_campaign(spec, journal)
    truncate_journal(journal, keep_points=1)

    with collecting() as collector:
        resumed = run_campaign(spec, journal, resume=True)
    counters = collector.metrics.counters()
    assert counters["sweep.cells_resumed"] == 1
    # The resumed point's fidelity was replayed, not recomputed.
    assert counters.get("harness.fidelity_evaluated", 0) == \
        spec.num_points - 1

    assert resumed.has_fidelity
    assert resumed.to_document() == baseline.to_document()
    write_reports(resumed, resumed_dir)
    resumed.save(resumed_dir / "campaign.json")
    for name in ("report.md", "summary.csv", "fidelity.csv",
                 "campaign.json"):
        assert (resumed_dir / name).read_bytes() == \
            (baseline_dir / name).read_bytes(), name


def test_fidelity_campaign_parallel_matches_serial(fidelity_campaign,
                                                   tmp_path):
    spec, serial, _ = fidelity_campaign
    parallel = run_campaign(spec, tmp_path / "parallel.jsonl", jobs=2)
    assert parallel.to_document() == serial.to_document()


def test_fidelity_document_round_trips(fidelity_campaign, tmp_path):
    _, result, journal = fidelity_campaign
    path = result.save(tmp_path / "campaign.json")
    loaded = CampaignResult.load(path)
    assert loaded.has_fidelity
    assert loaded.to_document() == result.to_document()
    rebuilt = result_from_journal(result.spec, journal)
    assert rebuilt.to_document() == result.to_document()


def test_fidelity_flag_changes_spec_digest():
    plain = make_spec()
    assert make_spec(fidelity=True).digest() != plain.digest()
    # ...but a default fidelity_top_n stays out of the document entirely.
    assert "fidelity" not in plain.to_dict()
    assert "fidelity_top_n" not in plain.to_dict()


def test_run_campaign_dir_writes_every_artifact(tmp_path):
    spec = make_spec(periods=(500,), seed_counts=(1,))
    out = tmp_path / "camp"
    result = run_campaign_dir(spec, out)
    for name in ("spec.json", "journal.jsonl", "campaign.json", "report.md",
                 "summary.csv", "period_sensitivity.csv",
                 "seed_convergence.csv", "campaign.meta.json"):
        assert (out / name).exists(), name
    assert load_campaign(out).to_document() == result.to_document()

    manifest = json.loads((out / "campaign.meta.json").read_text())
    assert manifest["config"]["spec_digest"] == spec.digest()
    assert manifest["config"]["campaign"]["name"] == spec.name

    # The same directory refuses a different campaign.
    with pytest.raises(SweepError, match="different campaign"):
        run_campaign_dir(spec.with_(name="other"), out, resume=True)
