"""Shared fixtures for the campaign subsystem tests.

Campaigns are deliberately tiny (one workload at 5% scale) so the whole
package stays in tier-1 time budget; the session-scoped ``tiny_result``
is reused by every aggregation/report test.
"""

from __future__ import annotations

import pytest

from repro.sweep import CampaignSpec, run_campaign


def make_spec(**overrides) -> CampaignSpec:
    """A small but multi-axis campaign: 2 methods x 2 periods x 2 depths."""
    fields = dict(
        name="tiny",
        workloads=("callchain",),
        methods=("classic", "precise"),
        machines=("ivybridge",),
        periods=(500, 1000),
        seed_counts=(1, 2),
        scale=0.05,
    )
    fields.update(overrides)
    return CampaignSpec(**fields)


@pytest.fixture(scope="session")
def tiny_spec() -> CampaignSpec:
    return make_spec()


@pytest.fixture(scope="session")
def tiny_result(tiny_spec, tmp_path_factory):
    """One completed tiny campaign (8 cells), run once per session."""
    journal = tmp_path_factory.mktemp("tiny-campaign") / "journal.jsonl"
    return run_campaign(tiny_spec, journal)


def make_fidelity_spec(**overrides) -> CampaignSpec:
    """A minimal fidelity campaign over one of the new workload families."""
    fields = dict(
        name="tiny-fidelity",
        workloads=("phased",),
        methods=("classic", "lbr"),
        machines=("westmere",),
        seed_counts=(2,),
        scale=0.03,
        fidelity=True,
    )
    fields.update(overrides)
    return CampaignSpec(**fields)


@pytest.fixture(scope="session")
def fidelity_campaign(tmp_path_factory):
    """(spec, result, journal_path) of one completed fidelity campaign."""
    spec = make_fidelity_spec()
    journal = tmp_path_factory.mktemp("fid-campaign") / "journal.jsonl"
    return spec, run_campaign(spec, journal), journal
