"""Unit tests for the append-only campaign journal."""

import json

import pytest

from repro.core.stats import AccuracyStats
from repro.errors import SweepError
from repro.sweep import CampaignJournal, load_journal

from tests.sweep.conftest import make_spec


def write_journal(path, spec, points, *, stats=(0.1, 0.2)):
    """A journal holding ``points`` completed entries."""
    with CampaignJournal(path) as journal:
        journal.open(spec)
        for point in points:
            journal.record(
                point, AccuracyStats(method=point.cell.method, errors=stats)
            )
    return path


def test_header_and_round_trip(tmp_path):
    spec = make_spec()
    points = spec.expand()
    path = write_journal(tmp_path / "j.jsonl", spec, points[:3])

    first = json.loads(path.read_text().splitlines()[0])
    assert first["type"] == "campaign_start"
    assert first["spec_digest"] == spec.digest()
    assert first["points"] == spec.num_points

    state = load_journal(path)
    assert state.name == spec.name
    assert state.spec_digest == spec.digest()
    assert set(state.completed) == {p.point_id for p in points[:3]}
    stats = state.stats_for(points[0])
    assert stats is not None and stats.errors == (0.1, 0.2)


def test_blank_cells_round_trip_as_null(tmp_path):
    spec = make_spec()
    point = spec.expand()[0]
    path = tmp_path / "j.jsonl"
    with CampaignJournal(path) as journal:
        journal.open(spec)
        journal.record(point, None)
    state = load_journal(path)
    assert state.completed[point.point_id] is None
    assert state.stats_for(point) is None


def test_truncated_final_line_is_tolerated(tmp_path):
    spec = make_spec()
    points = spec.expand()
    path = write_journal(tmp_path / "j.jsonl", spec, points[:4])
    # Simulate a crash mid-append: cut the last record in half.
    data = path.read_bytes()
    path.write_bytes(data[: len(data) - 17])

    state = load_journal(path)
    assert set(state.completed) == {p.point_id for p in points[:3]}


def test_resume_trims_torn_tail_before_appending(tmp_path):
    spec = make_spec()
    points = spec.expand()
    path = write_journal(tmp_path / "j.jsonl", spec, points[:2])
    data = path.read_bytes()
    path.write_bytes(data[: len(data) - 9])        # torn final record

    with CampaignJournal(path) as journal:
        journal.open(spec, resume=True)
        journal.record(
            points[2], AccuracyStats(method=points[2].cell.method,
                                     errors=(0.3,))
        )

    # Every surviving line parses; the torn record is gone, not merged.
    lines = path.read_text().splitlines()
    events = [json.loads(line) for line in lines]
    ids = [e["id"] for e in events if e["type"] == "point"]
    assert ids == [points[0].point_id, points[2].point_id]


def test_corrupt_mid_file_line_raises(tmp_path):
    spec = make_spec()
    points = spec.expand()
    path = write_journal(tmp_path / "j.jsonl", spec, points[:3])
    lines = path.read_text().splitlines()
    lines[2] = lines[2][:10]                       # corrupt a middle record
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(SweepError, match="corrupt journal line 3"):
        load_journal(path)


def test_missing_header_raises(tmp_path):
    path = tmp_path / "j.jsonl"
    path.write_text('{"v": 1, "type": "point", "id": "x", "errors": [0.1]}\n')
    with pytest.raises(SweepError, match="campaign_start"):
        load_journal(path)


def test_version_mismatch_raises(tmp_path):
    spec = make_spec()
    path = write_journal(tmp_path / "j.jsonl", spec, [])
    lines = path.read_text().splitlines()
    header = json.loads(lines[0])
    header["v"] = 99
    path.write_text(json.dumps(header) + "\n")
    with pytest.raises(SweepError, match="version"):
        load_journal(path)


def test_missing_and_empty_files_raise(tmp_path):
    with pytest.raises(SweepError, match="no campaign journal"):
        load_journal(tmp_path / "nope.jsonl")
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    with pytest.raises(SweepError, match="empty"):
        load_journal(empty)


def test_record_on_closed_journal_raises(tmp_path):
    spec = make_spec()
    journal = CampaignJournal(tmp_path / "j.jsonl")
    with pytest.raises(SweepError, match="not open"):
        journal.record(spec.expand()[0], None)


def test_fidelity_round_trips_through_journal(tmp_path):
    from repro.fidelity.stats import FidelityStats
    from tests.sweep.conftest import make_fidelity_spec

    spec = make_fidelity_spec()
    point = spec.expand()[0]
    fid = FidelityStats(
        method=point.cell.method, top_n=10,
        jaccard=(0.8, 0.6), rank=(0.9, 0.95), inline=(1.0, 0.5),
        layout=(0.7, 0.75), convergence=(16, None),
    )
    path = tmp_path / "j.jsonl"
    with CampaignJournal(path) as journal:
        journal.open(spec)
        journal.record(
            point, AccuracyStats(method=point.cell.method, errors=(0.1,)),
            fid,
        )
    state = load_journal(path)
    assert state.fidelity_for(point) == fid

    event = json.loads(path.read_text().splitlines()[1])
    assert event["fidelity"] == fid.to_dict()


def test_plain_records_carry_no_fidelity_key(tmp_path):
    spec = make_spec()
    points = spec.expand()
    path = write_journal(tmp_path / "j.jsonl", spec, points[:2])
    for line in path.read_text().splitlines():
        assert "fidelity" not in line
    state = load_journal(path)
    assert state.fidelity == {}
    assert state.fidelity_for(points[0]) is None
