"""Unit tests for markdown/CSV campaign reports."""

import csv
import io

from repro.sweep import (
    fidelity_summary,
    render_markdown,
    summarize,
    write_reports,
)
from repro.sweep.report import (
    fidelity_csv,
    period_sensitivity_csv,
    seed_convergence_csv,
    summary_csv,
)


def test_markdown_report_structure(tiny_result):
    text = render_markdown(tiny_result)
    spec = tiny_result.spec
    assert f"# Campaign report: {spec.name}" in text
    assert spec.digest() in text
    assert "| method | period | mean err | 95% CI | cells |" in text
    assert "## Figure 1 — period sensitivity" in text
    assert "## Figure 2 — seed convergence" in text
    for method in spec.methods:
        assert f"| {method} |" in text
    # Figure bars are present and bounded.
    assert "|#" in text


def test_rendering_is_deterministic(tiny_result):
    assert render_markdown(tiny_result) == render_markdown(tiny_result)
    assert summary_csv(tiny_result) == summary_csv(tiny_result)


def test_summary_csv_matches_aggregates(tiny_result):
    rows = list(csv.DictReader(io.StringIO(summary_csv(tiny_result))))
    summary = summarize(tiny_result)
    assert len(rows) == len(summary)
    for row, expected in zip(rows, summary):
        assert row["method"] == expected.method
        assert int(row["period"]) == expected.period
        assert float(row["mean_err"]) == round(expected.ci.mean, 6)
        assert float(row["ci_lo"]) <= float(row["mean_err"]) \
            <= float(row["ci_hi"])


def test_curve_csvs_have_expected_axes(tiny_result):
    spec = tiny_result.spec
    periods = list(csv.DictReader(
        io.StringIO(period_sensitivity_csv(tiny_result))
    ))
    assert {int(r["period"]) for r in periods} == set(spec.periods)
    seeds = list(csv.DictReader(
        io.StringIO(seed_convergence_csv(tiny_result))
    ))
    assert {int(r["seeds"]) for r in seeds} == set(spec.seed_counts)
    assert all(float(r["ci_half_width"]) >= 0 for r in seeds)


def test_write_reports_creates_all_files(tiny_result, tmp_path):
    paths = write_reports(tiny_result, tmp_path)
    assert [p.name for p in paths] == [
        "report.md", "summary.csv", "period_sensitivity.csv",
        "seed_convergence.csv",
    ]
    for path in paths:
        assert path.read_text().strip()


def test_plain_campaign_report_has_no_fidelity_trace(tiny_result):
    """Plain campaigns' report bytes must stay exactly as before the
    fidelity subsystem existed."""
    assert not tiny_result.has_fidelity
    assert "fidelity" not in render_markdown(tiny_result).lower()


def test_fidelity_report_section_and_csv(fidelity_campaign, tmp_path):
    spec, result, _ = fidelity_campaign
    assert result.has_fidelity

    text = render_markdown(result)
    assert "## Consumer fidelity" in text
    assert f"top-{spec.fidelity_top_n} blocks" in text
    for method in spec.methods:
        assert f"| {method} |" in text

    paths = write_reports(result, tmp_path)
    assert [p.name for p in paths][-1] == "fidelity.csv"
    rows = list(csv.DictReader(io.StringIO(fidelity_csv(result))))
    assert {r["method"] for r in rows} == set(spec.methods)
    for row in rows:
        for field in ("jaccard", "rank", "inline", "layout"):
            assert 0.0 <= float(row[field]) <= 1.0
        assert float(row["jaccard_ci_lo"]) <= float(row["jaccard"]) \
            <= float(row["jaccard_ci_hi"])
        assert int(row["converged"]) <= int(row["repeats"])


def test_fidelity_report_is_deterministic(fidelity_campaign):
    _, result, _ = fidelity_campaign
    assert render_markdown(result) == render_markdown(result)
    assert fidelity_csv(result) == fidelity_csv(result)


def test_fidelity_summary_pools_per_seed_scores(fidelity_campaign):
    spec, result, _ = fidelity_campaign
    rows = fidelity_summary(result)
    assert [r.method for r in rows] == list(spec.methods)
    for row in rows:
        assert row.jaccard.samples == spec.max_repeats * row.cells
        assert row.jaccard.lo <= row.jaccard.mean <= row.jaccard.hi
